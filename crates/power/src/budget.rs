//! TDP budgeting: domain power budgets and the compute-domain power budget
//! manager (PBM).
//!
//! The PMU keeps the SoC's average power below the thermal design power by
//! assigning each domain a power budget (Sec. 1). The baseline policy
//! reserves a *fixed, worst-case* budget for the IO and memory domains
//! (Observation 1); SysScale's contribution is to size that reservation from
//! the *predicted* demand and hand the freed budget to the compute domain,
//! whose PBM converts it into higher CPU/graphics P-states (Sec. 4.3–4.4).

use std::sync::Arc;

use sysscale_compute::{PState, PStateTable};
use sysscale_types::{Freq, Power, SimError, SimResult};

use crate::compute_power::ComputeDomainPowerModel;

/// Per-domain power budgets.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DomainBudgets {
    /// Budget of the compute domain (CPU cores, graphics, LLC).
    pub compute: Power,
    /// Budget of the IO domain (interconnect, IO engines, DDRIO-digital).
    pub io: Power,
    /// Budget of the memory domain (memory controller, DRAM, DDRIO-analog).
    pub memory: Power,
}

impl DomainBudgets {
    /// Total of the three domain budgets.
    #[must_use]
    pub fn total(&self) -> Power {
        self.compute + self.io + self.memory
    }
}

/// Budget policy: how the TDP is split between the uncore (IO + memory)
/// reservation and the compute domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetPolicy {
    /// IO-domain reservation at the *worst-case* (highest) operating point.
    pub io_worst_case: Power,
    /// Memory-domain reservation at the worst-case operating point.
    pub memory_worst_case: Power,
    /// Minimum compute budget that is always preserved (the compute domain
    /// can never be starved completely).
    pub min_compute: Power,
}

impl Default for BudgetPolicy {
    fn default() -> Self {
        Self {
            io_worst_case: Power::from_mw(650.0),
            memory_worst_case: Power::from_mw(900.0),
            min_compute: Power::from_mw(500.0),
        }
    }
}

impl BudgetPolicy {
    /// Validates the policy against a TDP.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the reservations leave less
    /// than `min_compute` at the given TDP, or any value is non-positive.
    pub fn validate(&self, tdp: Power) -> SimResult<()> {
        if tdp <= Power::ZERO {
            return Err(SimError::invalid_config("tdp must be positive"));
        }
        if self.io_worst_case <= Power::ZERO
            || self.memory_worst_case <= Power::ZERO
            || self.min_compute <= Power::ZERO
        {
            return Err(SimError::invalid_config(
                "budget reservations must be positive",
            ));
        }
        let compute = tdp - self.io_worst_case - self.memory_worst_case;
        if compute < self.min_compute {
            return Err(SimError::invalid_config(format!(
                "tdp {tdp} leaves less than the minimum compute budget"
            )));
        }
        Ok(())
    }

    /// The baseline split: fixed worst-case reservations for IO and memory,
    /// remainder to compute (Observation 1).
    #[must_use]
    pub fn worst_case_budgets(&self, tdp: Power) -> DomainBudgets {
        let compute = (tdp - self.io_worst_case - self.memory_worst_case).max(self.min_compute);
        DomainBudgets {
            compute,
            io: self.io_worst_case,
            memory: self.memory_worst_case,
        }
    }

    /// A demand-driven split: the governor supplies its estimate of the
    /// uncore power at the chosen operating point, and the saved budget
    /// (relative to the worst case) is redistributed to the compute domain
    /// (Sec. 4.3: "the PMU reduces the power budgets of the IO and memory
    /// domains and increases the power budget of the compute domain").
    #[must_use]
    pub fn demand_driven_budgets(
        &self,
        tdp: Power,
        io_estimate: Power,
        memory_estimate: Power,
    ) -> DomainBudgets {
        // Never allocate more than the worst case to the uncore.
        let io = io_estimate.min(self.io_worst_case);
        let memory = memory_estimate.min(self.memory_worst_case);
        let compute = (tdp - io - memory).max(self.min_compute);
        DomainBudgets {
            compute,
            io,
            memory,
        }
    }
}

/// A request to the compute-domain PBM for one evaluation interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputeRequest {
    /// Highest CPU frequency the OS currently requests (P-state request).
    pub cpu_requested: Freq,
    /// Highest graphics frequency the driver currently requests.
    pub gfx_requested: Freq,
    /// Expected CPU utilization in `[0, 1]` over the interval.
    pub cpu_activity: f64,
    /// Expected graphics utilization in `[0, 1]` over the interval.
    pub gfx_activity: f64,
    /// `true` if the graphics engine should be budgeted first (graphics
    /// workloads, Sec. 7.2 — the GFX engine gets 80–90 % of the compute
    /// budget).
    pub gfx_priority: bool,
    /// Package C0 residency over the interval.
    pub c0_fraction: f64,
    /// Compute leakage fraction retained given the C-state profile.
    pub leakage_fraction: f64,
}

/// The P-states granted by the PBM and the power estimate they imply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputeGrant {
    /// Granted CPU P-state.
    pub cpu: PState,
    /// Granted graphics P-state.
    pub gfx: PState,
    /// Estimated compute-domain power at the granted states.
    pub estimated_power: Power,
}

/// The compute-domain power budget manager.
///
/// The P-state ladders are held behind [`Arc`] so per-run/per-worker PBM
/// construction shares the immutable tables instead of deep-cloning them
/// (see `sysscale_soc::PlatformArtifacts`).
#[derive(Debug, Clone, PartialEq)]
pub struct PowerBudgetManager {
    model: ComputeDomainPowerModel,
    cpu_table: Arc<PStateTable>,
    gfx_table: Arc<PStateTable>,
}

impl Default for PowerBudgetManager {
    fn default() -> Self {
        Self::new(
            ComputeDomainPowerModel::default(),
            PStateTable::skylake_cpu(),
            PStateTable::skylake_gfx(),
        )
    }
}

impl PowerBudgetManager {
    /// Creates a PBM from a power model and the two P-state ladders. Tables
    /// may be passed by value or as pre-shared [`Arc`]s.
    #[must_use]
    pub fn new(
        model: ComputeDomainPowerModel,
        cpu_table: impl Into<Arc<PStateTable>>,
        gfx_table: impl Into<Arc<PStateTable>>,
    ) -> Self {
        Self {
            model,
            cpu_table: cpu_table.into(),
            gfx_table: gfx_table.into(),
        }
    }

    /// The CPU P-state ladder in use.
    #[must_use]
    pub fn cpu_table(&self) -> &PStateTable {
        &self.cpu_table
    }

    /// The graphics P-state ladder in use.
    #[must_use]
    pub fn gfx_table(&self) -> &PStateTable {
        &self.gfx_table
    }

    /// The CPU ladder's shared handle (for constructing further PBMs without
    /// cloning the table).
    #[must_use]
    pub fn cpu_table_shared(&self) -> Arc<PStateTable> {
        Arc::clone(&self.cpu_table)
    }

    /// The graphics ladder's shared handle.
    #[must_use]
    pub fn gfx_table_shared(&self) -> Arc<PStateTable> {
        Arc::clone(&self.gfx_table)
    }

    /// The compute-domain power model in use.
    #[must_use]
    pub fn model(&self) -> &ComputeDomainPowerModel {
        &self.model
    }

    fn estimate(&self, req: &ComputeRequest, cpu: PState, gfx: PState) -> Power {
        self.model.power(
            cpu,
            req.cpu_activity * req.c0_fraction,
            gfx,
            req.gfx_activity * req.c0_fraction,
            req.c0_fraction,
            req.leakage_fraction,
        )
    }

    /// Grants the highest P-states that honour the OS/driver requests and
    /// keep the estimated compute power within `budget`. If even the lowest
    /// states exceed the budget, the lowest states are granted (the PBM
    /// "places the requestor in a safe lower frequency", Sec. 4.4; it cannot
    /// go below the bottom of the ladder).
    #[must_use]
    pub fn grant(&self, budget: Power, req: &ComputeRequest) -> ComputeGrant {
        let cpu_cap = self.cpu_table.floor_state(req.cpu_requested);
        let gfx_cap = self.gfx_table.floor_state(req.gfx_requested);
        let mut cpu = self.cpu_table.lowest();
        let mut gfx = self.gfx_table.lowest();

        // Raise the priority unit first, then the other, one ladder step at a
        // time while the estimate stays within budget.
        let raise_gfx_first = req.gfx_priority;
        for round in 0..2 {
            let raising_gfx = (round == 0) == raise_gfx_first;
            loop {
                let candidate = if raising_gfx {
                    let next = self
                        .gfx_table
                        .states()
                        .iter()
                        .find(|s| s.freq > gfx.freq && s.freq <= gfx_cap.freq * 1.000_001)
                        .copied();
                    match next {
                        Some(n) => (cpu, n),
                        None => break,
                    }
                } else {
                    let next = self
                        .cpu_table
                        .states()
                        .iter()
                        .find(|s| s.freq > cpu.freq && s.freq <= cpu_cap.freq * 1.000_001)
                        .copied();
                    match next {
                        Some(n) => (n, gfx),
                        None => break,
                    }
                };
                if self.estimate(req, candidate.0, candidate.1) <= budget {
                    cpu = candidate.0;
                    gfx = candidate.1;
                } else {
                    break;
                }
            }
        }

        ComputeGrant {
            cpu,
            gfx,
            estimated_power: self.estimate(req, cpu, gfx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu_request(budget_friendly: bool) -> ComputeRequest {
        ComputeRequest {
            cpu_requested: Freq::from_ghz(2.9),
            gfx_requested: Freq::from_ghz(0.3),
            cpu_activity: 1.0,
            gfx_activity: if budget_friendly { 0.0 } else { 1.0 },
            gfx_priority: false,
            c0_fraction: 1.0,
            leakage_fraction: 1.0,
        }
    }

    #[test]
    fn worst_case_budget_split() {
        let policy = BudgetPolicy::default();
        let tdp = Power::from_watts(4.5);
        assert!(policy.validate(tdp).is_ok());
        let b = policy.worst_case_budgets(tdp);
        assert!((b.total().as_watts() - 4.5).abs() < 1e-9);
        assert!(b.compute.as_watts() > 2.5);
        assert_eq!(b.io, policy.io_worst_case);
        assert_eq!(b.memory, policy.memory_worst_case);
    }

    #[test]
    fn demand_driven_split_redistributes_savings_to_compute() {
        let policy = BudgetPolicy::default();
        let tdp = Power::from_watts(4.5);
        let worst = policy.worst_case_budgets(tdp);
        let saved = policy.demand_driven_budgets(tdp, Power::from_mw(420.0), Power::from_mw(560.0));
        assert!(saved.compute > worst.compute);
        assert!((saved.total().as_watts() - 4.5).abs() < 1e-9);
        // Estimates above the worst case are clamped.
        let clamped =
            policy.demand_driven_budgets(tdp, Power::from_watts(2.0), Power::from_watts(2.0));
        assert_eq!(clamped.io, policy.io_worst_case);
        assert_eq!(clamped.memory, policy.memory_worst_case);
    }

    #[test]
    fn policy_validation_rejects_tiny_tdp() {
        let policy = BudgetPolicy::default();
        assert!(policy.validate(Power::from_watts(1.5)).is_err());
        assert!(policy.validate(Power::ZERO).is_err());
        assert!(policy.validate(Power::from_watts(3.5)).is_ok());
    }

    #[test]
    fn pbm_grant_respects_budget_and_grows_with_it() {
        let pbm = PowerBudgetManager::default();
        let req = cpu_request(true);
        let small = pbm.grant(Power::from_watts(2.3), &req);
        let large = pbm.grant(Power::from_watts(2.8), &req);
        assert!(small.estimated_power <= Power::from_watts(2.3));
        assert!(large.estimated_power <= Power::from_watts(2.8));
        assert!(
            large.cpu.freq > small.cpu.freq,
            "extra budget raises the CPU clock"
        );
        // Both stay well below the unconstrained maximum.
        assert!(large.cpu.freq < Freq::from_ghz(2.9));
    }

    #[test]
    fn pbm_grant_respects_os_request_cap() {
        let pbm = PowerBudgetManager::default();
        let mut req = cpu_request(true);
        req.cpu_requested = Freq::from_ghz(1.2);
        let grant = pbm.grant(Power::from_watts(4.0), &req);
        assert!(grant.cpu.freq <= Freq::from_ghz(1.2) * 1.001);
    }

    #[test]
    fn pbm_prioritizes_graphics_when_asked() {
        let pbm = PowerBudgetManager::default();
        let req = ComputeRequest {
            cpu_requested: Freq::from_ghz(0.8),
            gfx_requested: Freq::from_ghz(1.0),
            cpu_activity: 0.2,
            gfx_activity: 1.0,
            gfx_priority: true,
            c0_fraction: 1.0,
            leakage_fraction: 1.0,
        };
        let budget = Power::from_watts(3.0);
        let grant = pbm.grant(budget, &req);
        assert!(grant.estimated_power <= budget);
        // The graphics engine climbs well above its floor while the CPU stays
        // near its cap (which is already low).
        assert!(grant.gfx.freq > Freq::from_ghz(0.5));
        // Graphics consumes the bulk of the compute budget.
        let gfx_only = pbm.model().gfx.power(grant.gfx, 1.0, 1.0);
        assert!(gfx_only.as_watts() / grant.estimated_power.as_watts() > 0.6);
    }

    #[test]
    fn pbm_grants_floor_states_when_budget_is_tiny() {
        let pbm = PowerBudgetManager::default();
        let grant = pbm.grant(Power::from_mw(100.0), &cpu_request(true));
        assert_eq!(grant.cpu, pbm.cpu_table().lowest());
        assert_eq!(grant.gfx, pbm.gfx_table().lowest());
    }
}
