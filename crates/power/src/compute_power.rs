//! Compute-domain power models: CPU cores (+LLC) and graphics engines.
//!
//! Dynamic power follows `C_eff · V² · f · activity`; leakage scales
//! super-linearly with voltage and is reduced by power gating in deep
//! C-states. The constants are calibrated so that a 2-core Skylake-class
//! 4.5 W part is thermally limited around 1.5–2 GHz under sustained load,
//! which is what makes the power-budget redistribution of SysScale valuable.

use sysscale_types::{Power, Voltage};

use sysscale_compute::PState;

/// Calibration constants for one compute unit (CPU complex or GFX engine).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputeUnitPowerParams {
    /// Effective switching capacitance term: watts per (V² × GHz) at 100 %
    /// activity.
    pub ceff_w_per_v2_ghz: f64,
    /// Activity floor while the unit is clocked but idle.
    pub idle_activity: f64,
    /// Leakage at the reference voltage, watts.
    pub leakage_w_at_ref: f64,
    /// Reference voltage for the leakage figure.
    pub leakage_ref_voltage: Voltage,
}

impl ComputeUnitPowerParams {
    /// CPU-core complex (2 cores + ring + LLC slice dynamic share).
    #[must_use]
    pub fn skylake_cpu_2core() -> Self {
        Self {
            ceff_w_per_v2_ghz: 2.60,
            idle_activity: 0.05,
            leakage_w_at_ref: 0.30,
            leakage_ref_voltage: Voltage::from_mv(1_050.0),
        }
    }

    /// Graphics engines (GT2-class).
    #[must_use]
    pub fn skylake_gfx() -> Self {
        Self {
            ceff_w_per_v2_ghz: 5.60,
            idle_activity: 0.04,
            leakage_w_at_ref: 0.25,
            leakage_ref_voltage: Voltage::from_mv(1_000.0),
        }
    }
}

/// Power model of one compute unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputeUnitPowerModel {
    params: ComputeUnitPowerParams,
}

impl ComputeUnitPowerModel {
    /// Creates a model from calibration parameters.
    #[must_use]
    pub fn new(params: ComputeUnitPowerParams) -> Self {
        Self { params }
    }

    /// Read-only access to the parameters.
    #[must_use]
    pub fn params(&self) -> &ComputeUnitPowerParams {
        &self.params
    }

    /// Average power of the unit over a window.
    ///
    /// * `pstate` — granted frequency/voltage operating point.
    /// * `activity` — utilization of the unit in `[0, 1]` (execution activity
    ///   × duty cycle × C0 residency).
    /// * `leakage_fraction` — fraction of leakage not removed by power gating
    ///   (1.0 in C0, lower in deep C-states).
    #[must_use]
    pub fn power(&self, pstate: PState, activity: f64, leakage_fraction: f64) -> Power {
        let p = &self.params;
        let a = activity.clamp(0.0, 1.0);
        let effective_activity = if a > 0.0 {
            p.idle_activity + (1.0 - p.idle_activity) * a
        } else {
            0.0
        };
        let dynamic = p.ceff_w_per_v2_ghz
            * pstate.voltage.squared()
            * pstate.freq.as_ghz()
            * effective_activity;
        let v_ratio = pstate.voltage.as_volts() / p.leakage_ref_voltage.as_volts();
        let leakage = p.leakage_w_at_ref * v_ratio.powi(3) * leakage_fraction.clamp(0.0, 1.0);
        Power::from_watts(dynamic + leakage)
    }
}

/// The complete compute-domain power model (CPU + GFX + a small fixed LLC
/// and ring overhead).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputeDomainPowerModel {
    /// CPU-core complex model.
    pub cpu: ComputeUnitPowerModel,
    /// Graphics-engine model.
    pub gfx: ComputeUnitPowerModel,
    /// Fixed LLC array + ring power while the compute domain is active, watts.
    pub llc_active_w: f64,
}

impl Default for ComputeDomainPowerModel {
    fn default() -> Self {
        Self {
            cpu: ComputeUnitPowerModel::new(ComputeUnitPowerParams::skylake_cpu_2core()),
            gfx: ComputeUnitPowerModel::new(ComputeUnitPowerParams::skylake_gfx()),
            llc_active_w: 0.12,
        }
    }
}

impl ComputeDomainPowerModel {
    /// Total compute-domain power.
    ///
    /// * `cpu_state` / `gfx_state` — granted P-states.
    /// * `cpu_activity` / `gfx_activity` — utilizations in `[0, 1]`.
    /// * `c0_fraction` — fraction of time the package is in C0 (gates the LLC
    ///   overhead).
    /// * `leakage_fraction` — compute leakage retained given the C-state
    ///   residency profile.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn power(
        &self,
        cpu_state: PState,
        cpu_activity: f64,
        gfx_state: PState,
        gfx_activity: f64,
        c0_fraction: f64,
        leakage_fraction: f64,
    ) -> Power {
        let cpu = self.cpu.power(cpu_state, cpu_activity, leakage_fraction);
        let gfx = self.gfx.power(gfx_state, gfx_activity, leakage_fraction);
        let llc = Power::from_watts(self.llc_active_w * c0_fraction.clamp(0.0, 1.0));
        cpu + gfx + llc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysscale_compute::PStateTable;
    use sysscale_types::Freq;

    fn cpu_model() -> ComputeUnitPowerModel {
        ComputeUnitPowerModel::new(ComputeUnitPowerParams::skylake_cpu_2core())
    }

    #[test]
    fn cpu_power_at_base_frequency_fits_a_4_5w_budget() {
        let table = PStateTable::skylake_cpu();
        let state = table.ceil_state(Freq::from_ghz(1.2));
        let p = cpu_model().power(state, 1.0, 1.0);
        // Leaves room for uncore + DRAM within 4.5 W.
        assert!(p.as_watts() > 0.8 && p.as_watts() < 2.2, "cpu power {p}");
    }

    #[test]
    fn cpu_power_at_max_frequency_exceeds_the_mobile_tdp() {
        // This is what makes the part thermally limited and the budget
        // redistribution valuable.
        let table = PStateTable::skylake_cpu();
        let p = cpu_model().power(table.highest(), 1.0, 1.0);
        assert!(p.as_watts() > 4.5, "max cpu power {p}");
    }

    #[test]
    fn power_is_monotonic_along_the_pstate_ladder() {
        let table = PStateTable::skylake_cpu();
        let model = cpu_model();
        let mut last = Power::ZERO;
        for &s in table.states() {
            let p = model.power(s, 0.8, 1.0);
            assert!(p > last);
            last = p;
        }
    }

    #[test]
    fn activity_and_leakage_fraction_scale_power() {
        let table = PStateTable::skylake_cpu();
        let s = table.ceil_state(Freq::from_ghz(1.5));
        let model = cpu_model();
        let busy = model.power(s, 1.0, 1.0);
        let idle_clocked = model.power(s, 0.0, 1.0);
        let gated = model.power(s, 0.0, 0.05);
        assert!(busy > idle_clocked);
        assert!(idle_clocked > gated);
        // Fully gated and idle: only residual leakage remains.
        assert!(gated.as_watts() < 0.05);
    }

    #[test]
    fn gfx_power_dominates_cpu_at_equal_voltage_frequency() {
        // Sec. 7.2: while running graphics workloads the graphics engines
        // consume 80-90% of the compute budget.
        let cpu = cpu_model();
        let gfx = ComputeUnitPowerModel::new(ComputeUnitPowerParams::skylake_gfx());
        let state = PState {
            freq: Freq::from_ghz(0.8),
            voltage: Voltage::from_mv(700.0),
        };
        assert!(gfx.power(state, 1.0, 1.0) > cpu.power(state, 1.0, 1.0));
    }

    #[test]
    fn domain_model_sums_units_and_llc() {
        let model = ComputeDomainPowerModel::default();
        let cpu_table = PStateTable::skylake_cpu();
        let gfx_table = PStateTable::skylake_gfx();
        let cpu_s = cpu_table.ceil_state(Freq::from_ghz(1.2));
        let gfx_s = gfx_table.lowest();
        let total = model.power(cpu_s, 0.9, gfx_s, 0.1, 1.0, 1.0);
        let parts = model.cpu.power(cpu_s, 0.9, 1.0)
            + model.gfx.power(gfx_s, 0.1, 1.0)
            + Power::from_watts(model.llc_active_w);
        assert!((total.as_watts() - parts.as_watts()).abs() < 1e-12);
        // Idle package burns almost nothing.
        let idle = model.power(cpu_s, 0.0, gfx_s, 0.0, 0.0, 0.05);
        assert!(idle.as_watts() < 0.1);
    }
}
