//! Performance counters sampled by the PMU.
//!
//! SysScale's dynamic demand prediction is driven by four counters
//! (Sec. 4.2): `GFX_LLC_MISSES`, `LLC_Occupancy_Tracer`, `LLC_STALLS`, and
//! `IO_RPQ`. The simulator additionally exposes a handful of bookkeeping
//! counters (bandwidth, C-state residency, QoS violations) used by the
//! experiments and the baselines.

use std::fmt;

/// The kinds of performance counters the PMU can sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CounterKind {
    /// Number of LLC misses caused by the graphics engines per sample period.
    /// Indicates graphics bandwidth demand.
    GfxLlcMisses,
    /// Number of CPU requests waiting for data from the memory controller
    /// (occupancy-over-time). Indicates the cores are bandwidth limited.
    LlcOccupancyTracer,
    /// Number of stall cycles due to a busy LLC. Indicates the workload is
    /// memory-latency limited.
    LlcStalls,
    /// IO read-pending-queue occupancy. Indicates the workload is IO limited.
    IoRpq,
    /// Total main-memory read+write bandwidth consumed, in bytes per sample
    /// period.
    MemoryBandwidthBytes,
    /// Main-memory bandwidth consumed by isochronous IO traffic (display,
    /// ISP), in bytes per sample period.
    IsochronousBandwidthBytes,
    /// Instructions retired by the CPU cores in the sample period.
    InstructionsRetired,
    /// Frames produced by the graphics engine in the sample period.
    FramesRendered,
    /// Time (in seconds) spent in active C0 state during the sample period.
    C0ResidencySeconds,
    /// Time (in seconds) the DRAM spent in self-refresh during the sample period.
    SelfRefreshSeconds,
    /// Count of isochronous QoS violations (display underruns etc.).
    QosViolations,
    /// Number of uncore DVFS transitions performed.
    DvfsTransitions,
}

impl CounterKind {
    /// The four counters used by SysScale's prediction algorithm (Sec. 4.2).
    pub const PREDICTOR_SET: [CounterKind; 4] = [
        CounterKind::GfxLlcMisses,
        CounterKind::LlcOccupancyTracer,
        CounterKind::LlcStalls,
        CounterKind::IoRpq,
    ];

    /// Every counter kind, in declaration (= `Ord`) order. This is the
    /// iteration order of [`CounterSet::iter`].
    pub const ALL: [CounterKind; 12] = [
        CounterKind::GfxLlcMisses,
        CounterKind::LlcOccupancyTracer,
        CounterKind::LlcStalls,
        CounterKind::IoRpq,
        CounterKind::MemoryBandwidthBytes,
        CounterKind::IsochronousBandwidthBytes,
        CounterKind::InstructionsRetired,
        CounterKind::FramesRendered,
        CounterKind::C0ResidencySeconds,
        CounterKind::SelfRefreshSeconds,
        CounterKind::QosViolations,
        CounterKind::DvfsTransitions,
    ];

    /// Dense index of this kind in [`CounterKind::ALL`].
    #[must_use]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Short name matching the paper's nomenclature where applicable.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CounterKind::GfxLlcMisses => "GFX_LLC_MISSES",
            CounterKind::LlcOccupancyTracer => "LLC_Occupancy_Tracer",
            CounterKind::LlcStalls => "LLC_STALLS",
            CounterKind::IoRpq => "IO_RPQ",
            CounterKind::MemoryBandwidthBytes => "MEM_BW_BYTES",
            CounterKind::IsochronousBandwidthBytes => "ISOC_BW_BYTES",
            CounterKind::InstructionsRetired => "INST_RETIRED",
            CounterKind::FramesRendered => "FRAMES_RENDERED",
            CounterKind::C0ResidencySeconds => "C0_RESIDENCY_S",
            CounterKind::SelfRefreshSeconds => "SELF_REFRESH_S",
            CounterKind::QosViolations => "QOS_VIOLATIONS",
            CounterKind::DvfsTransitions => "DVFS_TRANSITIONS",
        }
    }
}

impl fmt::Display for CounterKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A set of counter values for one sample period.
///
/// Counters not present read as zero, mirroring hardware counters that are
/// not incremented during a period.
///
/// The storage is a fixed inline array indexed by [`CounterKind::index`]
/// plus a presence bitmask: creating, writing, merging, and dropping a
/// counter set performs **no heap allocation**, which keeps the simulator's
/// per-slice sampling loop allocation-free. Iteration yields present
/// counters in [`CounterKind::ALL`] (declaration) order, so sums over a set
/// are reproducible.
///
/// ```
/// use sysscale_types::{CounterKind, CounterSet};
/// let mut c = CounterSet::new();
/// c.add(CounterKind::LlcStalls, 120.0);
/// c.add(CounterKind::LlcStalls, 30.0);
/// assert_eq!(c.value(CounterKind::LlcStalls), 150.0);
/// assert_eq!(c.value(CounterKind::IoRpq), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CounterSet {
    // Invariant: a slot whose presence bit is clear always holds 0.0, so the
    // derived PartialEq matches the map semantics (same present kinds with
    // the same values).
    values: [f64; CounterKind::ALL.len()],
    present: u16,
}

// The presence mask must be able to hold one bit per counter kind.
const _: () = assert!(CounterKind::ALL.len() <= u16::BITS as usize);

impl CounterSet {
    /// Creates an empty (all-zero) counter set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads a counter value (zero if never written).
    #[must_use]
    pub fn value(&self, kind: CounterKind) -> f64 {
        self.values[kind.index()]
    }

    /// Sets a counter to an absolute value.
    pub fn set(&mut self, kind: CounterKind, value: f64) {
        self.values[kind.index()] = value;
        self.present |= 1 << kind.index();
    }

    /// Increments a counter by `delta`.
    pub fn add(&mut self, kind: CounterKind, delta: f64) {
        self.values[kind.index()] += delta;
        self.present |= 1 << kind.index();
    }

    /// Merges another counter set into this one by summation.
    pub fn merge(&mut self, other: &CounterSet) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }

    /// Resets all counters to zero.
    pub fn clear(&mut self) {
        self.values = [0.0; CounterKind::ALL.len()];
        self.present = 0;
    }

    /// Returns `true` if no counter has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.present == 0
    }

    /// Iterates over `(kind, value)` pairs of the counters that have been
    /// written, in [`CounterKind::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (CounterKind, f64)> + '_ {
        CounterKind::ALL
            .iter()
            .filter(|k| self.present & (1 << k.index()) != 0)
            .map(|&k| (k, self.values[k.index()]))
    }
}

/// A sliding window of [`CounterSet`] samples collected over an evaluation
/// interval.
///
/// The PMU samples counters every ~1 ms and uses the per-sample *average*
/// over the 30 ms evaluation interval in the power-distribution algorithm
/// (Sec. 4.3).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CounterWindow {
    samples: Vec<CounterSet>,
}

impl CounterWindow {
    /// Creates an empty window.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty window with room for `samples` samples, so a caller
    /// that pushes at most that many between [`CounterWindow::clear`]s never
    /// reallocates (the simulator sizes this to one evaluation interval).
    #[must_use]
    pub fn with_capacity(samples: usize) -> Self {
        Self {
            samples: Vec::with_capacity(samples),
        }
    }

    /// Appends one sample (the counters accumulated over one sample period).
    pub fn push(&mut self, sample: CounterSet) {
        self.samples.push(sample);
    }

    /// Number of samples in the window.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if the window holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Average value of `kind` across all samples (zero for an empty window).
    #[must_use]
    pub fn average(&self, kind: CounterKind) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.samples.iter().map(|s| s.value(kind)).sum();
        sum / self.samples.len() as f64
    }

    /// Maximum value of `kind` across all samples (zero for an empty window).
    #[must_use]
    pub fn max(&self, kind: CounterKind) -> f64 {
        self.samples
            .iter()
            .map(|s| s.value(kind))
            .fold(0.0, f64::max)
    }

    /// Sum of `kind` across all samples.
    #[must_use]
    pub fn total(&self, kind: CounterKind) -> f64 {
        self.samples.iter().map(|s| s.value(kind)).sum()
    }

    /// A [`CounterSet`] holding the per-sample averages of every counter that
    /// appears in the window.
    #[must_use]
    pub fn averages(&self) -> CounterSet {
        let mut avg = CounterSet::new();
        if self.samples.is_empty() {
            return avg;
        }
        let mut totals = CounterSet::new();
        for s in &self.samples {
            totals.merge(s);
        }
        for (k, v) in totals.iter() {
            avg.set(k, v / self.samples.len() as f64);
        }
        avg
    }

    /// Clears all samples (start of a new evaluation interval).
    pub fn clear(&mut self) {
        self.samples.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictor_set_matches_paper() {
        let names: Vec<_> = CounterKind::PREDICTOR_SET
            .iter()
            .map(|c| c.name())
            .collect();
        assert_eq!(
            names,
            vec![
                "GFX_LLC_MISSES",
                "LLC_Occupancy_Tracer",
                "LLC_STALLS",
                "IO_RPQ"
            ]
        );
    }

    #[test]
    fn counter_set_read_write_merge() {
        let mut a = CounterSet::new();
        assert!(a.is_empty());
        a.set(CounterKind::IoRpq, 5.0);
        a.add(CounterKind::IoRpq, 2.0);
        let mut b = CounterSet::new();
        b.add(CounterKind::IoRpq, 3.0);
        b.add(CounterKind::LlcStalls, 10.0);
        a.merge(&b);
        assert_eq!(a.value(CounterKind::IoRpq), 10.0);
        assert_eq!(a.value(CounterKind::LlcStalls), 10.0);
        assert_eq!(a.value(CounterKind::GfxLlcMisses), 0.0);
        assert_eq!(a.iter().count(), 2);
        a.clear();
        assert!(a.is_empty());
    }

    #[test]
    fn window_average_max_total() {
        let mut w = CounterWindow::new();
        assert_eq!(w.average(CounterKind::LlcStalls), 0.0);
        for v in [10.0, 20.0, 30.0] {
            let mut s = CounterSet::new();
            s.set(CounterKind::LlcStalls, v);
            s.set(CounterKind::MemoryBandwidthBytes, v * 100.0);
            w.push(s);
        }
        assert_eq!(w.len(), 3);
        assert!((w.average(CounterKind::LlcStalls) - 20.0).abs() < 1e-12);
        assert_eq!(w.max(CounterKind::LlcStalls), 30.0);
        assert_eq!(w.total(CounterKind::LlcStalls), 60.0);
        let avgs = w.averages();
        assert!((avgs.value(CounterKind::MemoryBandwidthBytes) - 2000.0).abs() < 1e-9);
        w.clear();
        assert!(w.is_empty());
    }

    #[test]
    fn averages_of_empty_window_are_empty() {
        let w = CounterWindow::new();
        assert!(w.averages().is_empty());
    }

    #[test]
    fn all_list_matches_declaration_order_and_indices() {
        assert_eq!(CounterKind::ALL.len(), 12);
        for (i, kind) in CounterKind::ALL.iter().enumerate() {
            assert_eq!(kind.index(), i);
        }
        let mut sorted = CounterKind::ALL.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, CounterKind::ALL.to_vec(), "ALL is in Ord order");
    }

    #[test]
    fn iteration_yields_written_counters_in_declaration_order() {
        let mut c = CounterSet::new();
        c.set(CounterKind::DvfsTransitions, 2.0);
        c.set(CounterKind::GfxLlcMisses, 1.0);
        c.set(CounterKind::FramesRendered, 0.0);
        let kinds: Vec<CounterKind> = c.iter().map(|(k, _)| k).collect();
        assert_eq!(
            kinds,
            vec![
                CounterKind::GfxLlcMisses,
                CounterKind::FramesRendered,
                CounterKind::DvfsTransitions,
            ]
        );
        // A counter explicitly written to zero is present (unlike an
        // untouched one), mirroring the previous map-backed semantics.
        let mut untouched = CounterSet::new();
        untouched.set(CounterKind::GfxLlcMisses, 1.0);
        untouched.set(CounterKind::DvfsTransitions, 2.0);
        assert_ne!(c, untouched);
        assert_eq!(c.value(CounterKind::LlcStalls), 0.0);
    }

    #[test]
    fn window_with_capacity_behaves_like_new() {
        let mut w = CounterWindow::with_capacity(30);
        assert!(w.is_empty());
        w.push(CounterSet::new());
        assert_eq!(w.len(), 1);
        w.clear();
        assert!(w.is_empty());
    }

    #[test]
    fn counter_kind_display_names_are_unique() {
        let all = [
            CounterKind::GfxLlcMisses,
            CounterKind::LlcOccupancyTracer,
            CounterKind::LlcStalls,
            CounterKind::IoRpq,
            CounterKind::MemoryBandwidthBytes,
            CounterKind::IsochronousBandwidthBytes,
            CounterKind::InstructionsRetired,
            CounterKind::FramesRendered,
            CounterKind::C0ResidencySeconds,
            CounterKind::SelfRefreshSeconds,
            CounterKind::QosViolations,
            CounterKind::DvfsTransitions,
        ];
        let mut names: Vec<_> = all.iter().map(|c| c.to_string()).collect();
        names.sort();
        let n = names.len();
        names.dedup();
        assert_eq!(n, names.len());
    }
}
