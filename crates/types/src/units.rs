//! Physical unit newtypes used throughout the simulator.
//!
//! All quantities are stored as `f64` in SI base units (hertz, volts, watts,
//! joules, seconds, bytes per second, bytes). The newtypes provide static
//! distinction between quantities (`C-NEWTYPE`), convenient constructors for
//! the scales that appear in the paper (GHz, MHz, mW, GB/s, ...), and the
//! arithmetic that is physically meaningful for each quantity.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Generates a standard f64-backed unit newtype with common constructors,
/// accessors, arithmetic, and formatting.
macro_rules! unit_newtype {
    (
        $(#[$meta:meta])*
        $name:ident, base = $base:ident, display = $display:literal
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// The zero value for this quantity.
            pub const ZERO: Self = Self(0.0);

            /// Creates a value from the SI base unit.
            #[must_use]
            pub const fn $base(value: f64) -> Self {
                Self(value)
            }

            /// Returns the value in the SI base unit.
            #[must_use]
            pub const fn get(self) -> f64 {
                self.0
            }

            /// Returns `true` if the value is exactly zero.
            #[must_use]
            pub fn is_zero(self) -> bool {
                self.0 == 0.0
            }

            /// Returns the larger of two values.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of two values.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Clamps the value into `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi`.
            #[must_use]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                assert!(lo.0 <= hi.0, "invalid clamp range");
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// Returns the absolute value.
            #[must_use]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns `true` if the value is finite (not NaN or infinity).
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Linear interpolation between `self` and `other` with factor
            /// `t` in `[0, 1]` (values outside the range extrapolate).
            #[must_use]
            pub fn lerp(self, other: Self, t: f64) -> Self {
                Self(self.0 + (other.0 - self.0) * t)
            }

            /// Ratio of this value to `other` as a plain number.
            ///
            /// Returns `0.0` when `other` is zero to keep downstream models
            /// well-defined for idle components.
            #[must_use]
            pub fn ratio(self, other: Self) -> f64 {
                if other.0 == 0.0 {
                    0.0
                } else {
                    self.0 / other.0
                }
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            type Output = f64;
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!("{:.4} ", $display), self.0)
            }
        }
    };
}

unit_newtype!(
    /// A frequency in hertz.
    ///
    /// ```
    /// use sysscale_types::Freq;
    /// let dram = Freq::from_ghz(1.6);
    /// assert_eq!(dram.as_mhz(), 1600.0);
    /// ```
    Freq, base = from_hz, display = "Hz"
);

unit_newtype!(
    /// An electric potential in volts.
    ///
    /// ```
    /// use sysscale_types::Voltage;
    /// let v_sa = Voltage::from_mv(800.0);
    /// assert!((v_sa.as_volts() - 0.8).abs() < 1e-12);
    /// ```
    Voltage, base = from_volts, display = "V"
);

unit_newtype!(
    /// A power in watts.
    ///
    /// ```
    /// use sysscale_types::Power;
    /// let tdp = Power::from_watts(4.5);
    /// assert_eq!(tdp.as_mw(), 4500.0);
    /// ```
    Power, base = from_watts, display = "W"
);

unit_newtype!(
    /// An energy in joules.
    ///
    /// ```
    /// use sysscale_types::{Energy, Power, SimTime};
    /// let e = Power::from_watts(2.0) * SimTime::from_millis(500.0);
    /// assert!((e.as_joules() - 1.0).abs() < 1e-12);
    /// ```
    Energy, base = from_joules, display = "J"
);

unit_newtype!(
    /// A duration of simulated time in seconds.
    ///
    /// ```
    /// use sysscale_types::SimTime;
    /// let interval = SimTime::from_millis(30.0);
    /// assert_eq!(interval.as_micros(), 30_000.0);
    /// ```
    SimTime, base = from_secs, display = "s"
);

unit_newtype!(
    /// A data rate in bytes per second.
    ///
    /// ```
    /// use sysscale_types::Bandwidth;
    /// let peak = Bandwidth::from_gib_s(25.6);
    /// assert!(peak > Bandwidth::from_gib_s(10.0));
    /// ```
    Bandwidth, base = from_bytes_per_sec, display = "B/s"
);

unit_newtype!(
    /// An amount of data in bytes.
    ///
    /// ```
    /// use sysscale_types::DataVolume;
    /// let cacheline = DataVolume::from_bytes(64.0);
    /// assert_eq!(cacheline.as_kib(), 0.0625);
    /// ```
    DataVolume, base = from_bytes, display = "B"
);

impl Freq {
    /// Creates a frequency from kilohertz.
    #[must_use]
    pub fn from_khz(khz: f64) -> Self {
        Self::from_hz(khz * 1e3)
    }

    /// Creates a frequency from megahertz.
    #[must_use]
    pub fn from_mhz(mhz: f64) -> Self {
        Self::from_hz(mhz * 1e6)
    }

    /// Creates a frequency from gigahertz.
    #[must_use]
    pub fn from_ghz(ghz: f64) -> Self {
        Self::from_hz(ghz * 1e9)
    }

    /// Returns the frequency in hertz.
    #[must_use]
    pub fn as_hz(self) -> f64 {
        self.get()
    }

    /// Returns the frequency in megahertz.
    #[must_use]
    pub fn as_mhz(self) -> f64 {
        self.get() / 1e6
    }

    /// Returns the frequency in gigahertz.
    #[must_use]
    pub fn as_ghz(self) -> f64 {
        self.get() / 1e9
    }

    /// Returns the period of one cycle at this frequency.
    ///
    /// Returns [`SimTime::ZERO`] for a zero frequency (a gated clock never
    /// ticks, so no time is attributed to it).
    #[must_use]
    pub fn period(self) -> SimTime {
        if self.is_zero() {
            SimTime::ZERO
        } else {
            SimTime::from_secs(1.0 / self.get())
        }
    }

    /// Number of cycles elapsed at this frequency over `duration`.
    #[must_use]
    pub fn cycles_in(self, duration: SimTime) -> f64 {
        self.get() * duration.as_secs()
    }
}

impl Voltage {
    /// Creates a voltage from millivolts.
    #[must_use]
    pub fn from_mv(mv: f64) -> Self {
        Self::from_volts(mv / 1e3)
    }

    /// Returns the voltage in volts.
    #[must_use]
    pub fn as_volts(self) -> f64 {
        self.get()
    }

    /// Returns the voltage in millivolts.
    #[must_use]
    pub fn as_mv(self) -> f64 {
        self.get() * 1e3
    }

    /// Returns the square of the voltage in volts², as used by `C·V²·f`
    /// dynamic power models.
    #[must_use]
    pub fn squared(self) -> f64 {
        self.get() * self.get()
    }
}

impl Power {
    /// Creates a power from milliwatts.
    #[must_use]
    pub fn from_mw(mw: f64) -> Self {
        Self::from_watts(mw / 1e3)
    }

    /// Returns the power in watts.
    #[must_use]
    pub fn as_watts(self) -> f64 {
        self.get()
    }

    /// Returns the power in milliwatts.
    #[must_use]
    pub fn as_mw(self) -> f64 {
        self.get() * 1e3
    }
}

impl Energy {
    /// Creates an energy from millijoules.
    #[must_use]
    pub fn from_mj(mj: f64) -> Self {
        Self::from_joules(mj / 1e3)
    }

    /// Creates an energy from microjoules.
    #[must_use]
    pub fn from_uj(uj: f64) -> Self {
        Self::from_joules(uj / 1e6)
    }

    /// Returns the energy in joules.
    #[must_use]
    pub fn as_joules(self) -> f64 {
        self.get()
    }

    /// Returns the energy in millijoules.
    #[must_use]
    pub fn as_mj(self) -> f64 {
        self.get() * 1e3
    }
}

impl SimTime {
    /// Creates a time from milliseconds.
    #[must_use]
    pub fn from_millis(ms: f64) -> Self {
        Self::from_secs(ms / 1e3)
    }

    /// Creates a time from microseconds.
    #[must_use]
    pub fn from_micros(us: f64) -> Self {
        Self::from_secs(us / 1e6)
    }

    /// Creates a time from nanoseconds.
    #[must_use]
    pub fn from_nanos(ns: f64) -> Self {
        Self::from_secs(ns / 1e9)
    }

    /// Returns the time in seconds.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.get()
    }

    /// Returns the time in milliseconds.
    #[must_use]
    pub fn as_millis(self) -> f64 {
        self.get() * 1e3
    }

    /// Returns the time in microseconds.
    #[must_use]
    pub fn as_micros(self) -> f64 {
        self.get() * 1e6
    }

    /// Returns the time in nanoseconds.
    #[must_use]
    pub fn as_nanos(self) -> f64 {
        self.get() * 1e9
    }
}

impl Bandwidth {
    /// Creates a bandwidth from gibibytes per second (2³⁰ bytes/s).
    #[must_use]
    pub fn from_gib_s(gib: f64) -> Self {
        Self::from_bytes_per_sec(gib * (1u64 << 30) as f64)
    }

    /// Creates a bandwidth from mebibytes per second (2²⁰ bytes/s).
    #[must_use]
    pub fn from_mib_s(mib: f64) -> Self {
        Self::from_bytes_per_sec(mib * (1u64 << 20) as f64)
    }

    /// Returns the bandwidth in bytes per second.
    #[must_use]
    pub fn as_bytes_per_sec(self) -> f64 {
        self.get()
    }

    /// Returns the bandwidth in gibibytes per second.
    #[must_use]
    pub fn as_gib_s(self) -> f64 {
        self.get() / (1u64 << 30) as f64
    }

    /// Returns the bandwidth in mebibytes per second.
    #[must_use]
    pub fn as_mib_s(self) -> f64 {
        self.get() / (1u64 << 20) as f64
    }
}

impl DataVolume {
    /// Creates a data volume from kibibytes.
    #[must_use]
    pub fn from_kib(kib: f64) -> Self {
        Self::from_bytes(kib * 1024.0)
    }

    /// Creates a data volume from mebibytes.
    #[must_use]
    pub fn from_mib(mib: f64) -> Self {
        Self::from_bytes(mib * (1u64 << 20) as f64)
    }

    /// Creates a data volume from gibibytes.
    #[must_use]
    pub fn from_gib(gib: f64) -> Self {
        Self::from_bytes(gib * (1u64 << 30) as f64)
    }

    /// Returns the data volume in bytes.
    #[must_use]
    pub fn as_bytes(self) -> f64 {
        self.get()
    }

    /// Returns the data volume in kibibytes.
    #[must_use]
    pub fn as_kib(self) -> f64 {
        self.get() / 1024.0
    }

    /// Returns the data volume in gibibytes.
    #[must_use]
    pub fn as_gib(self) -> f64 {
        self.get() / (1u64 << 30) as f64
    }
}

// --- Cross-unit arithmetic -------------------------------------------------

impl Mul<SimTime> for Power {
    type Output = Energy;
    fn mul(self, rhs: SimTime) -> Energy {
        Energy::from_joules(self.as_watts() * rhs.as_secs())
    }
}

impl Mul<Power> for SimTime {
    type Output = Energy;
    fn mul(self, rhs: Power) -> Energy {
        rhs * self
    }
}

impl Div<SimTime> for Energy {
    type Output = Power;
    fn div(self, rhs: SimTime) -> Power {
        Power::from_watts(self.as_joules() / rhs.as_secs())
    }
}

impl Div<Power> for Energy {
    type Output = SimTime;
    fn div(self, rhs: Power) -> SimTime {
        SimTime::from_secs(self.as_joules() / rhs.as_watts())
    }
}

impl Mul<SimTime> for Bandwidth {
    type Output = DataVolume;
    fn mul(self, rhs: SimTime) -> DataVolume {
        DataVolume::from_bytes(self.as_bytes_per_sec() * rhs.as_secs())
    }
}

impl Mul<Bandwidth> for SimTime {
    type Output = DataVolume;
    fn mul(self, rhs: Bandwidth) -> DataVolume {
        rhs * self
    }
}

impl Div<SimTime> for DataVolume {
    type Output = Bandwidth;
    fn div(self, rhs: SimTime) -> Bandwidth {
        Bandwidth::from_bytes_per_sec(self.as_bytes() / rhs.as_secs())
    }
}

impl Div<Bandwidth> for DataVolume {
    type Output = SimTime;
    fn div(self, rhs: Bandwidth) -> SimTime {
        SimTime::from_secs(self.as_bytes() / rhs.as_bytes_per_sec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freq_constructors_agree() {
        assert_eq!(Freq::from_ghz(1.6), Freq::from_mhz(1600.0));
        assert_eq!(Freq::from_mhz(1.0), Freq::from_khz(1000.0));
        assert_eq!(Freq::from_khz(1.0), Freq::from_hz(1000.0));
    }

    #[test]
    fn freq_period_and_cycles() {
        let f = Freq::from_ghz(1.0);
        assert!((f.period().as_nanos() - 1.0).abs() < 1e-12);
        assert!((f.cycles_in(SimTime::from_micros(1.0)) - 1000.0).abs() < 1e-6);
        assert_eq!(Freq::ZERO.period(), SimTime::ZERO);
    }

    #[test]
    fn voltage_scaling() {
        let v = Voltage::from_mv(800.0);
        assert!((v.squared() - 0.64).abs() < 1e-12);
        let reduced = v * 0.85;
        assert!((reduced.as_mv() - 680.0).abs() < 1e-9);
    }

    #[test]
    fn power_time_energy_roundtrip() {
        let p = Power::from_mw(4500.0);
        let t = SimTime::from_millis(100.0);
        let e = p * t;
        assert!((e.as_joules() - 0.45).abs() < 1e-12);
        let p2 = e / t;
        assert!((p2.as_watts() - p.as_watts()).abs() < 1e-12);
        let t2 = e / p;
        assert!((t2.as_secs() - t.as_secs()).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_volume_roundtrip() {
        let bw = Bandwidth::from_gib_s(25.6);
        let t = SimTime::from_millis(1.0);
        let v = bw * t;
        assert!((v.as_gib() - 0.0256).abs() < 1e-9);
        let bw2 = v / t;
        assert!((bw2.as_gib_s() - 25.6).abs() < 1e-9);
        let t2 = v / bw;
        assert!((t2.as_millis() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        assert_eq!(Bandwidth::from_gib_s(1.0).ratio(Bandwidth::ZERO), 0.0);
        assert!((Freq::from_ghz(1.06).ratio(Freq::from_ghz(1.6)) - 0.6625).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Power::from_watts(1.0);
        let b = Power::from_watts(2.0);
        assert_eq!(a + b, Power::from_watts(3.0));
        assert_eq!(b - a, Power::from_watts(1.0));
        assert_eq!(b * 2.0, Power::from_watts(4.0));
        assert_eq!(2.0 * b, Power::from_watts(4.0));
        assert_eq!(b / 2.0, a);
        assert!((b / a - 2.0).abs() < 1e-12);
        assert_eq!(-a, Power::from_watts(-1.0));
        let mut c = a;
        c += b;
        assert_eq!(c, Power::from_watts(3.0));
        c -= a;
        assert_eq!(c, b);
    }

    #[test]
    fn sum_of_units() {
        let total: Power = [1.0, 2.0, 3.5].iter().map(|&w| Power::from_watts(w)).sum();
        assert!((total.as_watts() - 6.5).abs() < 1e-12);
    }

    #[test]
    fn clamp_min_max_lerp() {
        let lo = Freq::from_ghz(0.8);
        let hi = Freq::from_ghz(1.6);
        assert_eq!(Freq::from_ghz(2.0).clamp(lo, hi), hi);
        assert_eq!(Freq::from_ghz(0.5).clamp(lo, hi), lo);
        assert_eq!(lo.max(hi), hi);
        assert_eq!(lo.min(hi), lo);
        let mid = lo.lerp(hi, 0.5);
        assert!((mid.as_ghz() - 1.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid clamp range")]
    fn clamp_panics_on_inverted_range() {
        let _ = Freq::from_ghz(1.0).clamp(Freq::from_ghz(2.0), Freq::from_ghz(1.0));
    }

    #[test]
    fn display_formats_nonempty() {
        assert!(!format!("{}", Freq::from_ghz(1.6)).is_empty());
        assert!(format!("{}", Power::from_watts(4.5)).contains('W'));
        assert!(format!("{}", Voltage::from_volts(0.8)).contains('V'));
    }
}
