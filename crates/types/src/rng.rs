//! A small deterministic pseudo-random number generator.
//!
//! The synthetic-population generator only needs a seedable, reproducible
//! stream of uniform samples; SplitMix64 (Steele et al., "Fast splittable
//! pseudorandom number generators") provides that in a dozen lines without an
//! external dependency. It is *not* cryptographically secure and must not be
//! used for anything security-sensitive.

/// SplitMix64 pseudo-random number generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. The same seed always yields the same
    /// sequence.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform sample in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality bits -> [0, 1) double.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Returns a uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn gen_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "invalid range [{lo}, {hi})");
        lo + (hi - lo) * self.next_f64()
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(SplitMix64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn samples_are_in_range_and_well_spread() {
        let mut rng = SplitMix64::new(7);
        let samples: Vec<f64> = (0..10_000).map(|_| rng.gen_range(2.0, 5.0)).collect();
        assert!(samples.iter().all(|&x| (2.0..5.0).contains(&x)));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 3.5).abs() < 0.05, "mean {mean}");
        let below_mid = samples.iter().filter(|&&x| x < 3.5).count();
        assert!((4_500..5_500).contains(&below_mid));
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = SplitMix64::new(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "hits {hits}");
        assert!(!SplitMix64::new(1).gen_bool(0.0));
        assert!(SplitMix64::new(1).gen_bool(1.0));
    }
}
