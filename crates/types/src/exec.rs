//! A small, deterministic, work-stealing-free scoped worker pool.
//!
//! The SysScale evaluation is an embarrassingly parallel matrix of
//! independent simulation cells. This module provides the minimal execution
//! primitive that matrix needs — and deliberately nothing more:
//!
//! * **static sharding** — the item→worker assignment is a pure function of
//!   `(item index, worker count, shard strategy)`. There is no work stealing
//!   and no shared queue, so every run of the same input is scheduled
//!   identically. Five strategies exist ([`Shard`]): plain round-robin
//!   (worker `w` of `n` processes items `w, w + n, w + 2n, …`), keyed
//!   sharding (items sharing a key — e.g. simulation cells on the same
//!   platform — are grouped onto as few workers as possible while keeping
//!   every worker busy; see [`Shard::ByKey`]), hot-key splitting
//!   ([`Shard::SplitHotKeys`], keyed sharding that additionally splits any
//!   key owning more than its fair share of the input across several
//!   workers, so one dominant key cannot serialize a batch), and their
//!   cost-weighted counterparts ([`Shard::ByCostKeyed`] and
//!   [`Shard::SplitHotCost`], which balance by a caller-supplied per-item
//!   cost weight instead of item count, so one dominant-*cost* item cannot
//!   serialize a batch either);
//! * **stable output order** — results are returned indexed by the *input*
//!   position, never by completion order, so callers observe output that is
//!   independent of thread interleaving;
//! * **scoped threads** — built on [`std::thread::scope`], so borrowed items
//!   and per-worker contexts need no `'static` lifetimes and no reference
//!   counting;
//! * **index-driven streaming** — [`map_indices_with_workers`] hands workers
//!   bare indices (always in ascending order per worker) instead of slice
//!   elements, so callers can pull items from a lazy per-worker generator
//!   and never materialize the full input;
//! * **streaming folds** — [`fold_indices_with_workers`] lets each worker
//!   fold its (ascending) index stream into a per-worker accumulator that
//!   is merged deterministically in worker order, so callers can aggregate
//!   arbitrarily large batches without materializing one result per item.
//!
//! Determinism caveat: the pool guarantees deterministic *scheduling* and
//! *ordering*. Bit-identical results additionally require that the mapped
//! function itself is a pure function of `(index, item, worker context)` and
//! that per-worker contexts are interchangeable (e.g. caches only).
//!
//! ## Example
//!
//! ```
//! use sysscale_types::exec;
//!
//! let squares = exec::map_indexed(4, &[1, 2, 3, 4, 5], |_i, x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//!
//! // Per-worker mutable contexts (one accumulator per worker):
//! let mut sums = vec![0u64; 2];
//! let doubled = exec::map_with_workers(&mut sums, &[1u64, 2, 3], |sum, _i, x| {
//!     *sum += x;
//!     x * 2
//! });
//! assert_eq!(doubled, vec![2, 4, 6]);
//! assert_eq!(sums.iter().sum::<u64>(), 6);
//! ```

use std::num::NonZeroUsize;

/// Environment variable overriding [`default_threads`].
pub const THREADS_ENV: &str = "SYSSCALE_THREADS";

/// Environment variable overriding [`default_procs`] (the worker *process*
/// count the distributed executor spawns, as opposed to the in-process
/// thread count governed by [`THREADS_ENV`]).
pub const PROCS_ENV: &str = "SYSSCALE_PROCS";

/// Upper bound [`default_threads`] / [`default_procs`] apply to the
/// *detected* parallelism (an explicit CLI or environment value may exceed
/// it).
pub const MAX_AUTO_THREADS: usize = 16;

/// The single worker-count resolution rule every layer shares, with the
/// documented precedence **CLI argument > environment variable > detected
/// cores**:
///
/// 1. `cli` — an explicit caller-provided count (e.g. a `--threads`/`--procs`
///    flag). Used verbatim when positive; `Some(0)` is treated like `None`
///    so callers can pass a raw parsed flag through without special-casing.
/// 2. `env_var` — the named environment variable (usually [`THREADS_ENV`]
///    or [`PROCS_ENV`]) if set to a positive integer.
/// 3. [`std::thread::available_parallelism`] capped at [`MAX_AUTO_THREADS`]
///    (one simulation cell saturates one core; beyond the physical core
///    count extra workers only cost memory).
///
/// Explicit values (CLI or env) are deliberately *not* capped: pinning more
/// workers than cores is a legitimate oversubscription experiment.
///
/// **Malformed environment values are diagnosed, not swallowed**: a set but
/// unusable value (`SYSSCALE_THREADS=4x`, `=0`, `=-2`) prints one warning
/// per distinct `(variable, value)` pair to stderr and then falls back to
/// the detected core count — the documented warn-and-fall-back choice, so a
/// typo'd pin degrades loudly instead of silently running at the wrong
/// width. A value that is empty or whitespace-only is treated as unset (the
/// conventional `VAR=` spelling of "no override") and draws no warning.
#[must_use]
pub fn resolve_parallelism(cli: Option<usize>, env_var: &str) -> usize {
    let env_value = std::env::var(env_var).ok();
    let (resolved, rejected) = resolve_from(cli, env_value.as_deref(), detected_parallelism());
    if let Some(reason) = rejected {
        warn_env_once(env_var, env_value.as_deref().unwrap_or(""), reason);
    }
    resolved
}

/// The pure core of [`resolve_parallelism`], separated so the precedence
/// rule is testable without mutating process-global environment state.
/// Returns the resolved count plus the reason the environment value was
/// rejected, when it was set to something other than a positive integer or
/// pure whitespace.
fn resolve_from(
    cli: Option<usize>,
    env_value: Option<&str>,
    detected: usize,
) -> (usize, Option<&'static str>) {
    if let Some(n) = cli {
        if n >= 1 {
            return (n, None);
        }
    }
    if let Some(value) = env_value {
        let trimmed = value.trim();
        if !trimmed.is_empty() {
            match trimmed.parse::<usize>() {
                Ok(0) => return (detected.max(1), Some("must be at least 1")),
                Ok(n) => return (n, None),
                Err(_) => return (detected.max(1), Some("not a positive integer")),
            }
        }
        // Empty / whitespace-only: the conventional "unset" spelling.
    }
    (detected.max(1), None)
}

/// Prints one stderr warning per distinct `(variable, value)` pair — a
/// malformed pin is worth exactly one line, not one per batch the process
/// executes.
fn warn_env_once(var: &str, value: &str, reason: &str) {
    use std::sync::Mutex;
    static WARNED: Mutex<Vec<(String, String)>> = Mutex::new(Vec::new());
    let mut warned = WARNED
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if warned.iter().any(|(v, val)| v == var && val == value) {
        return;
    }
    warned.push((var.to_string(), value.to_string()));
    eprintln!("warning: ignoring {var}={value:?} ({reason}); falling back to detected parallelism");
}

/// Detected hardware parallelism, capped at [`MAX_AUTO_THREADS`].
fn detected_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(MAX_AUTO_THREADS)
}

/// The worker *thread* count batch executors use when the caller does not
/// pin one: [`resolve_parallelism`] over [`THREADS_ENV`] with no CLI value.
#[must_use]
pub fn default_threads() -> usize {
    resolve_parallelism(None, THREADS_ENV)
}

/// The worker *process* count the distributed executor uses when the caller
/// does not pin one: [`resolve_parallelism`] over [`PROCS_ENV`] with no CLI
/// value.
#[must_use]
pub fn default_procs() -> usize {
    resolve_parallelism(None, PROCS_ENV)
}

/// How items are assigned to workers.
///
/// Both strategies are static: the assignment is a pure function of the item
/// index, the worker count, and (for keyed sharding) the caller-provided key
/// slice — never of timing. Changing the strategy changes *which worker*
/// processes an item, not the result order, so any mapped function that is a
/// pure function of `(index, item)` with interchangeable worker contexts
/// produces identical output under either strategy.
#[derive(Debug, Clone, Copy)]
pub enum Shard<'k> {
    /// Item `i` runs on worker `i % workers`. Balances load evenly across
    /// workers regardless of item content.
    RoundRobin,
    /// Items are grouped by key, with the key *values* irrelevant beyond
    /// equality and order: distinct keys are dense-ranked by ascending key
    /// value (`K` distinct keys), so raw hash values can never collide two
    /// groups onto one worker while another sits idle, and the
    /// group→worker mapping is a pure function of the key *multiset* — the
    /// order keys first appear in (e.g. the insertion order of sweep
    /// members) cannot change which worker owns a group.
    ///
    /// * `K ≥ workers` — group `g` runs entirely on worker `g % workers`:
    ///   items sharing a key always land on the same worker, so a
    ///   per-worker cache keyed on the same property (e.g. a simulator per
    ///   platform configuration) is built once per key instead of once per
    ///   `(worker, key)` pair, and the groups spread evenly.
    /// * `K < workers` — the workers are partitioned into `K` contiguous
    ///   ranges and each key's items split into a balanced contiguous
    ///   partition of its range (block sizes within one of each other, one
    ///   block per worker): every worker stays busy whenever its key has at
    ///   least as many items as its range is wide (a single-key batch
    ///   degrades to an even contiguous partition, not to one serialized
    ///   worker) while each key's items still touch the fewest workers
    ///   possible — and *consecutive* items of a key stay on one worker
    ///   except at the ≤ `workers − 1` block boundaries, so fold consumers
    ///   that pair up adjacent cells (e.g. a calibration high/low pair)
    ///   hold O(workers) records in flight, not O(items).
    ByKey(&'k [u64]),
    /// [`Shard::ByKey`] with hot-key splitting: any key owning more than
    /// `⌈len / workers⌉` items (its fair share of the input) is split into
    /// its proportional share of the workers — `⌈count·workers/len⌉`
    /// subgroups (at least 2), each holding at most the fair-share
    /// threshold — and the subgroups are spread like independent keys. A
    /// single dominant key can no longer serialize a batch on one worker
    /// (a key owning the whole input spreads over *every* worker), while
    /// keys at or below the threshold keep the full [`Shard::ByKey`]
    /// locality (one group, fewest workers possible).
    ///
    /// The split is deterministic and order-insensitive at the group level:
    /// subgroup ids derive from the value-sorted dense rank of the key and
    /// the occurrence index of the item within its key (a balanced
    /// contiguous partition — occurrence `o` of `count` items split `k`
    /// ways lands in subgroup `o·k / count`, so subgroup sizes stay within
    /// one of each other, never exceed the threshold, and adjacent cells
    /// stay together for pairing fold consumers), and the *set* of workers
    /// that own a key is again a pure function of the key multiset and the
    /// worker count.
    SplitHotKeys(&'k [u64]),
    /// Keyed sharding balanced by per-item **cost** instead of item count:
    /// items sharing a key stay grouped (full [`Shard::ByKey`] locality),
    /// but whole key groups are placed on workers by greedy
    /// longest-processing-time assignment over their *summed costs*
    /// (groups in descending cost order, each to the least-loaded worker),
    /// so a worker owning one expensive key is not also handed a cheap one
    /// while another worker idles. With fewer keys than workers, each key
    /// receives a contiguous worker range sized by its cost share (capped
    /// at its item count) and its items split cost-balanced over the range.
    ///
    /// Costs are opaque weights (a zero cost is treated as one). The
    /// assignment is a pure function of the `(key, cost)` pair multiset and
    /// the worker count: permuting the items permutes the assignment
    /// identically but never changes which workers own a key.
    ByCostKeyed {
        /// One key per item (shared key ⇒ same group), as [`Shard::ByKey`].
        keys: &'k [u64],
        /// One cost weight per item (relative units; zero counts as one).
        costs: &'k [u64],
    },
    /// [`Shard::ByCostKeyed`] with hot-key splitting by **summed cost**:
    /// any key whose summed cost exceeds `⌈total / workers⌉` (its fair
    /// share of the total cost) is split into its proportional share of
    /// the workers — `⌈key_cost·workers/total⌉` subgroups, at least 2,
    /// never more than the key's item count — with the key's items
    /// partitioned over the subgroups by descending-cost greedy balancing
    /// (prefix-sum cost, not index arithmetic), so one dominant-cost cell
    /// among hundreds of short ones no longer serializes the batch on one
    /// worker. Keys at or below the fair share keep full locality.
    ///
    /// Like every strategy here the split only steers *scheduling*: which
    /// worker runs an item, never the result order. Ownership is a pure
    /// function of the `(key, cost)` pair multiset and the worker count.
    SplitHotCost {
        /// One key per item (shared key ⇒ same group), as [`Shard::ByKey`].
        keys: &'k [u64],
        /// One cost weight per item (relative units; zero counts as one).
        costs: &'k [u64],
    },
}

/// Dense-ranks `keys` by ascending key value: returns one rank per item and
/// the number of distinct keys. Pure function of the key multiset — the
/// order in which keys first appear is irrelevant.
fn dense_ranks(keys: &[u64]) -> (Vec<usize>, usize) {
    let mut sorted: Vec<u64> = keys.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let ranks = keys
        .iter()
        .map(|key| sorted.binary_search(key).expect("key present"))
        .collect();
    (ranks, sorted.len())
}

/// Spreads group-labelled items over `workers`: with at least as many
/// groups as workers, group `g` runs entirely on worker `g % workers`;
/// with fewer groups, the workers are partitioned into contiguous ranges
/// (one per group) and each group's occurrences split into a *balanced
/// contiguous partition* over its range (occurrence `o` of `count` items on
/// `width` workers lands on slot `o·width / count`) — so consecutive items
/// of a group stay on one worker except at the `width − 1` boundaries,
/// block sizes differ by at most one, and every worker of the range
/// receives items whenever the group has at least `width` of them.
fn spread_groups(group_of: Vec<usize>, groups: usize, workers: usize) -> Vec<usize> {
    let groups = groups.max(1);
    if groups >= workers {
        return group_of.into_iter().map(|g| g % workers).collect();
    }
    let mut counts = vec![0usize; groups];
    for &g in &group_of {
        counts[g] += 1;
    }
    let mut occurrence = vec![0usize; groups];
    group_of
        .into_iter()
        .map(|g| {
            let start = g * workers / groups;
            let width = (g + 1) * workers / groups - start;
            let slot = occurrence[g] * width / counts[g];
            occurrence[g] += 1;
            start + slot
        })
        .collect()
}

/// The worker/part with the lowest load (ties resolved to the lowest
/// index, so the choice is deterministic).
fn least_loaded(loads: &[u128]) -> usize {
    let mut best = 0;
    for (i, &load) in loads.iter().enumerate() {
        if load < loads[best] {
            best = i;
        }
    }
    best
}

/// Splits one group's items into `parts` cost-balanced subgroups by greedy
/// longest-processing-time assignment: items in descending cost order go to
/// the currently cheapest subgroup. Returns one part index per item
/// (parallel to `items`). Ties between equal costs keep arrival order —
/// equal-cost items of one group are interchangeable, so the per-cost part
/// multiset (and with it, worker ownership) stays a pure function of the
/// cost multiset. Every part receives at least one item when the group has
/// at least `parts` items (the first `parts` items land on distinct parts).
fn lpt_partition(items: &[usize], cost_of: &dyn Fn(usize) -> u128, parts: usize) -> Vec<usize> {
    if parts <= 1 {
        return vec![0; items.len()];
    }
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by(|&a, &b| cost_of(items[b]).cmp(&cost_of(items[a])).then(a.cmp(&b)));
    let mut load = vec![0u128; parts];
    let mut part_of = vec![0usize; items.len()];
    for j in order {
        let p = least_loaded(&load);
        part_of[j] = p;
        load[p] += cost_of(items[j]);
    }
    part_of
}

/// The shared core of the cost-weighted strategies: dense-ranks the keys,
/// splits each key into `1` (cold) or its proportional cost share (hot,
/// when `split_hot`) of subgroups, then places the subgroups on workers by
/// summed cost — greedy LPT when there are at least as many subgroups as
/// workers, or cost-proportional contiguous worker ranges (with the items
/// cost-balanced over each range) when there are fewer.
fn cost_assignments(keys: &[u64], costs: &[u64], workers: usize, split_hot: bool) -> Vec<usize> {
    let len = keys.len();
    let (ranks, distinct) = dense_ranks(keys);
    // Costs are opaque relative weights; zero would make an item invisible
    // to the balance, so it is clamped to one. Sums use u128 so a full
    // u64-cost input cannot overflow.
    let cost_of = move |i: usize| u128::from(costs[i].max(1));
    let total: u128 = (0..len).map(cost_of).sum();
    let mut key_cost = vec![0u128; distinct];
    let mut key_items: Vec<Vec<usize>> = vec![Vec::new(); distinct];
    for (i, &r) in ranks.iter().enumerate() {
        key_cost[r] += cost_of(i);
        key_items[r].push(i);
    }
    // A key's fair share of the total cost; summing more makes it hot. A
    // hot key splits into `⌈key_cost·workers/total⌉` subgroups (at least
    // 2 — it is hot — and never more than its item count: a single
    // expensive item cannot be split).
    let fair = total.div_ceil(workers as u128).max(1);
    let splits: Vec<usize> = (0..distinct)
        .map(|r| {
            if split_hot && key_cost[r] > fair {
                let share = (key_cost[r] * workers as u128).div_ceil(total.max(1)) as usize;
                share.max(2).min(key_items[r].len()).max(1)
            } else {
                1
            }
        })
        .collect();
    let total_groups: usize = splits.iter().sum();

    // Subgroup ids are rank-major, part-minor — a pure function of the
    // value-sorted key ranks, never of first-appearance order.
    let mut group_of = vec![0usize; len];
    let mut group_cost = vec![0u128; total_groups];
    let mut group_items: Vec<Vec<usize>> = vec![Vec::new(); total_groups];
    let mut base = 0usize;
    for r in 0..distinct {
        let part_of = lpt_partition(&key_items[r], &cost_of, splits[r]);
        for (j, &i) in key_items[r].iter().enumerate() {
            let g = base + part_of[j];
            group_of[i] = g;
            group_cost[g] += cost_of(i);
            group_items[g].push(i);
        }
        base += splits[r];
    }

    if total_groups >= workers {
        // Whole subgroups placed by greedy LPT over their summed costs:
        // subgroups in descending cost order (ties by ascending subgroup
        // id) each go to the least-loaded worker. With every cost at least
        // one, the first `workers` subgroups land on distinct workers.
        let mut order: Vec<usize> = (0..total_groups).collect();
        order.sort_by(|&a, &b| group_cost[b].cmp(&group_cost[a]).then(a.cmp(&b)));
        let mut load = vec![0u128; workers];
        let mut worker_of_group = vec![0usize; total_groups];
        for g in order {
            let w = least_loaded(&load);
            worker_of_group[g] = w;
            load[w] += group_cost[g];
        }
        return group_of.into_iter().map(|g| worker_of_group[g]).collect();
    }

    // Fewer subgroups than workers: each subgroup receives a contiguous
    // worker range. Every subgroup gets one worker; the surplus workers go
    // one at a time to the subgroup with the highest cost per allotted
    // worker that still has more items than workers (deterministic greedy,
    // ties to the lowest subgroup id). A range can never outgrow its item
    // count, so no worker is handed an empty block while another subgroup
    // still has items to spread.
    let mut width = vec![1usize; total_groups];
    let mut surplus = workers - total_groups;
    while surplus > 0 {
        let mut best: Option<usize> = None;
        for g in 0..total_groups {
            if width[g] >= group_items[g].len() {
                continue;
            }
            let better = match best {
                None => true,
                // cost[g]/width[g] > cost[b]/width[b], cross-multiplied.
                Some(b) => group_cost[g] * width[b] as u128 > group_cost[b] * width[g] as u128,
            };
            if better {
                best = Some(g);
            }
        }
        let Some(g) = best else {
            break; // fewer items than workers overall: idle workers remain
        };
        width[g] += 1;
        surplus -= 1;
    }
    let mut start = vec![0usize; total_groups];
    for g in 1..total_groups {
        start[g] = start[g - 1] + width[g - 1];
    }
    let mut assignment = vec![0usize; len];
    for g in 0..total_groups {
        let part_of = lpt_partition(&group_items[g], &cost_of, width[g]);
        for (j, &i) in group_items[g].iter().enumerate() {
            assignment[i] = start[g] + part_of[j];
        }
    }
    assignment
}

impl Shard<'_> {
    /// The key slice of a keyed strategy (`None` for round-robin).
    fn keys(&self) -> Option<&[u64]> {
        match self {
            Shard::RoundRobin => None,
            Shard::ByKey(keys) | Shard::SplitHotKeys(keys) => Some(keys),
            Shard::ByCostKeyed { keys, .. } | Shard::SplitHotCost { keys, .. } => Some(keys),
        }
    }

    /// The cost slice of a cost-weighted strategy (`None` otherwise).
    fn costs(&self) -> Option<&[u64]> {
        match self {
            Shard::RoundRobin | Shard::ByKey(_) | Shard::SplitHotKeys(_) => None,
            Shard::ByCostKeyed { costs, .. } | Shard::SplitHotCost { costs, .. } => Some(costs),
        }
    }

    /// Validates that a keyed strategy's key (and cost) slices cover `len`
    /// items.
    fn validate(&self, len: usize) {
        if let Some(keys) = self.keys() {
            assert!(
                keys.len() >= len,
                "shard keys ({}) shorter than the input ({len})",
                keys.len()
            );
        }
        if let Some(costs) = self.costs() {
            assert!(
                costs.len() >= len,
                "shard costs ({}) shorter than the input ({len})",
                costs.len()
            );
        }
    }

    /// Computes the worker index for every item, as a pure function of
    /// `(len, workers)` and (for keyed sharding) the key slice — and, for
    /// the keyed strategies, of the key *multiset* only: permuting the
    /// items (and their keys) permutes the assignment identically but never
    /// changes which workers own a key.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero, or (for the keyed strategies) if the
    /// key slice is shorter than `len`.
    #[must_use]
    pub fn assignments(&self, len: usize, workers: usize) -> Vec<usize> {
        assert!(workers > 0, "shard requires at least one worker");
        self.validate(len);
        match self {
            Shard::RoundRobin => (0..len).map(|i| i % workers).collect(),
            Shard::ByKey(keys) => {
                let (ranks, distinct) = dense_ranks(&keys[..len]);
                spread_groups(ranks, distinct, workers)
            }
            Shard::SplitHotKeys(keys) => {
                let (ranks, distinct) = dense_ranks(&keys[..len]);
                // A key's fair share of the input; owning more makes it hot.
                let threshold = len.div_ceil(workers).max(1);
                let mut counts = vec![0usize; distinct];
                for &rank in &ranks {
                    counts[rank] += 1;
                }
                // Key `rank` owns subgroup ids [base[rank], base[rank] + splits[rank]).
                // A hot key splits into its *proportional share* of the
                // workers, `⌈c·workers/len⌉` — at least 2 (it is hot), and
                // enough subgroups that a single dominant key fills every
                // worker instead of just `⌈c/threshold⌉` of them; each
                // subgroup still holds at most `⌈c / k⌉ ≤ threshold` items.
                let splits: Vec<usize> = counts
                    .iter()
                    .map(|&c| {
                        if c > threshold {
                            (c * workers).div_ceil(len)
                        } else {
                            1
                        }
                    })
                    .collect();
                let mut base = Vec::with_capacity(distinct);
                let mut total_groups = 0usize;
                for &k in &splits {
                    base.push(total_groups);
                    total_groups += k;
                }
                let mut occurrence = vec![0usize; distinct];
                let groups: Vec<usize> = ranks
                    .into_iter()
                    .map(|rank| {
                        let o = occurrence[rank];
                        occurrence[rank] += 1;
                        // Balanced contiguous occurrence blocks (each at
                        // most `threshold` items, sizes within one):
                        // adjacent cells stay together.
                        base[rank] + o * splits[rank] / counts[rank]
                    })
                    .collect();
                spread_groups(groups, total_groups, workers)
            }
            Shard::ByCostKeyed { keys, costs } => {
                cost_assignments(&keys[..len], &costs[..len], workers, false)
            }
            Shard::SplitHotCost { keys, costs } => {
                cost_assignments(&keys[..len], &costs[..len], workers, true)
            }
        }
    }

    /// Materializes each worker's **ascending index list** for this shard —
    /// exactly the per-worker visit order [`fold_indices_with_workers`]
    /// executes, as one `Vec` per worker. The concatenation of the lists is
    /// a permutation of `0..len`, and each list is strictly ascending.
    ///
    /// This is the planning half of a resumable fold (see
    /// [`IncrementalFold`]): an executor that wants to run a batch in
    /// suspendable pieces cuts these lists into chunks (e.g. with
    /// [`cost_quantile_chunks`]) and folds each chunk into the owning
    /// slot's accumulator, in list order — reproducing the one-shot fold's
    /// partition and visit order bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero, or (for the keyed strategies) if the
    /// key slice is shorter than `len`.
    #[must_use]
    pub fn worker_lists(&self, len: usize, workers: usize) -> Vec<Vec<usize>> {
        assert!(workers > 0, "shard requires at least one worker");
        let mut lists: Vec<Vec<usize>> = vec![Vec::new(); workers];
        for (i, w) in self.assignments(len, workers).into_iter().enumerate() {
            lists[w].push(i);
        }
        lists
    }
}

/// Cuts an ascending item list into up to `chunks` contiguous pieces whose
/// boundaries fall on **cost-prefix quantiles**: piece `c` ends at the
/// first item whose cumulative cost reaches `(c+1)/chunks` of the list's
/// total, so an expensive item no longer drags a count-equal share of cheap
/// neighbours into its piece. Every piece keeps at least one item, pieces
/// stay contiguous and in order, and the plan is a pure function of
/// `(items, costs, chunks)`. Zero costs count as one, mirroring the
/// cost-keyed shard strategies.
///
/// This is the lease-sizing primitive shared by the distributed
/// dispatcher (cutting a worker slot's shard into replayable leases) and
/// the sweep service's multiplexing scheduler (cutting every submission's
/// slots into interleavable leases).
#[must_use]
pub fn cost_quantile_chunks(
    items: &[usize],
    cost_of: impl Fn(usize) -> u64,
    chunks: usize,
) -> Vec<Vec<usize>> {
    if items.is_empty() {
        return Vec::new();
    }
    let chunks = chunks.clamp(1, items.len());
    let cost = |item: usize| u128::from(cost_of(item).max(1));
    let total: u128 = items.iter().map(|&item| cost(item)).sum();
    let mut plan: Vec<Vec<usize>> = Vec::with_capacity(chunks);
    let mut current = Vec::new();
    let mut prefix: u128 = 0;
    for (i, &item) in items.iter().enumerate() {
        current.push(item);
        prefix += cost(item);
        let built = plan.len() + 1; // chunks complete once `current` closes
        let items_left = items.len() - (i + 1);
        let chunks_left = chunks - built;
        // Close the chunk at its cost quantile — or when exactly enough
        // items remain to keep every later chunk non-empty.
        let reached = prefix * chunks as u128 >= built as u128 * total;
        if built < chunks && (items_left == chunks_left || (reached && items_left >= chunks_left)) {
            plan.push(std::mem::take(&mut current));
        }
    }
    plan.push(current);
    plan
}

/// A **resumable** spelling of [`fold_indices_with_workers`]: the
/// per-worker-slot accumulators live here instead of on worker stacks, so
/// an executor can run a slot's index stream in pieces — checking a slot's
/// accumulator out, folding a chunk into it, restoring it, and doing
/// something else in between — and still finish with an accumulator
/// bit-identical to the one-shot fold's.
///
/// The contract the one-shot core enforces by construction is enforced
/// here by watermarks: each slot's chunks must arrive in ascending index
/// order ([`IncrementalFold::checkout`] panics on a regression), at most
/// one chunk per slot is in flight at a time (a second `checkout` while
/// one is out panics), and [`IncrementalFold::finish`] merges the slot
/// accumulators **in slot order** — the same merge order
/// [`fold_indices_with_workers`] uses for its workers.
///
/// What this type deliberately does *not* do is schedule: which slot runs
/// next, and on which OS thread, is the caller's policy. Any interleaving
/// that respects the per-slot ordering yields the same final accumulator,
/// which is what lets the sweep service multiplex many submissions over
/// one worker pool without perturbing any submission's result.
#[derive(Debug)]
pub struct IncrementalFold<A> {
    slots: Vec<FoldSlot<A>>,
}

#[derive(Debug)]
struct FoldSlot<A> {
    /// `None` while a chunk is checked out.
    acc: Option<A>,
    /// Lowest index the slot's next chunk may start at.
    watermark: usize,
}

impl<A> IncrementalFold<A> {
    /// One accumulator per worker slot, built by `make_acc` (fresh and
    /// empty, per the fold contract).
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    pub fn new(slots: usize, mut make_acc: impl FnMut() -> A) -> Self {
        assert!(slots > 0, "an incremental fold needs at least one slot");
        Self {
            slots: (0..slots)
                .map(|_| FoldSlot {
                    acc: Some(make_acc()),
                    watermark: 0,
                })
                .collect(),
        }
    }

    /// Number of worker slots.
    #[must_use]
    pub fn slots(&self) -> usize {
        self.slots.len()
    }

    /// Checks slot `slot`'s accumulator out for a chunk starting at
    /// `first_index`.
    ///
    /// # Panics
    ///
    /// Panics if the slot's accumulator is already checked out, or if
    /// `first_index` is below the slot's watermark (the chunk would revisit
    /// or reorder indices the slot already folded).
    pub fn checkout(&mut self, slot: usize, first_index: usize) -> A {
        let state = &mut self.slots[slot];
        assert!(
            first_index >= state.watermark,
            "slot {slot} chunk starts at {first_index}, below watermark {}",
            state.watermark
        );
        state
            .acc
            .take()
            .unwrap_or_else(|| panic!("slot {slot} accumulator already checked out"))
    }

    /// Restores slot `slot`'s accumulator after folding a chunk whose
    /// indices were all below `next_index` (typically `last + 1`).
    ///
    /// # Panics
    ///
    /// Panics if the slot's accumulator is not checked out.
    pub fn restore(&mut self, slot: usize, acc: A, next_index: usize) {
        let state = &mut self.slots[slot];
        assert!(
            state.acc.is_none(),
            "slot {slot} restored without a checkout"
        );
        state.acc = Some(acc);
        state.watermark = state.watermark.max(next_index);
    }

    /// Whether every slot's accumulator is currently restored (no chunk in
    /// flight).
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.slots.iter().all(|s| s.acc.is_some())
    }

    /// Merges the slot accumulators in slot order — `merge(&mut acc₀,
    /// acc₁)`, then `merge(&mut acc₀, acc₂)`, … — exactly the worker-order
    /// merge of the one-shot fold.
    ///
    /// # Panics
    ///
    /// Panics if any slot's accumulator is still checked out.
    pub fn finish(self, mut merge: impl FnMut(&mut A, A)) -> A {
        let mut accs = self.slots.into_iter().enumerate().map(|(slot, s)| {
            s.acc
                .unwrap_or_else(|| panic!("slot {slot} still checked out at finish"))
        });
        let mut merged = accs.next().expect("at least one slot");
        for acc in accs {
            merge(&mut merged, acc);
        }
        merged
    }
}

/// Maps `f` over `items` on up to `threads` scoped workers and returns the
/// results in input order.
///
/// Sharding is static round-robin (worker `w` takes indices
/// `w, w + threads, …`), so both the schedule and the output order are
/// deterministic for a given `(items.len(), threads)`. A `threads` of 1 (or
/// a single-item input) runs inline on the calling thread without spawning.
///
/// # Panics
///
/// Propagates a panic from `f` after the remaining workers finish.
pub fn map_indexed<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let mut contexts = vec![(); effective_workers(threads, items.len())];
    map_with_workers(&mut contexts, items, |(), i, x| f(i, x))
}

/// Like [`map_indexed`], but each worker additionally owns one mutable
/// context from `contexts` for the duration of the run (a simulator cache, an
/// accumulator, a scratch buffer). The worker count *is* `contexts.len()`.
///
/// Item `i` is processed by worker `i % contexts.len()` — the same static
/// round-robin shard as [`map_indexed`] — and results come back in input
/// order.
///
/// # Panics
///
/// Panics if `contexts` is empty; propagates a panic from `f`.
pub fn map_with_workers<C, T, R, F>(contexts: &mut [C], items: &[T], f: F) -> Vec<R>
where
    C: Send,
    T: Sync,
    R: Send,
    F: Fn(&mut C, usize, &T) -> R + Sync,
{
    map_with_workers_sharded(contexts, items, Shard::RoundRobin, f)
}

/// Like [`map_with_workers`], but with an explicit [`Shard`] strategy
/// choosing which worker processes each item.
///
/// # Panics
///
/// Panics if `contexts` is empty, if a [`Shard::ByKey`] key slice is shorter
/// than `items`, or propagates a panic from `f`.
pub fn map_with_workers_sharded<C, T, R, F>(
    contexts: &mut [C],
    items: &[T],
    shard: Shard<'_>,
    f: F,
) -> Vec<R>
where
    C: Send,
    T: Sync,
    R: Send,
    F: Fn(&mut C, usize, &T) -> R + Sync,
{
    map_indices_with_workers(contexts, items.len(), shard, |ctx, i| f(ctx, i, &items[i]))
}

/// The index-driven core of the pool: runs `f(ctx, i)` for every
/// `i ∈ 0..len`, with item `i` assigned to worker `shard.worker_for(i)` and
/// each worker visiting its indices in **ascending order**. Results come
/// back in index order.
///
/// Because workers receive bare indices, `f` is free to produce the item for
/// index `i` however it likes — typically by advancing a lazy per-worker
/// generator kept inside the worker context `C`, which the ascending-order
/// guarantee makes a single forward pass. This is what lets million-cell
/// scenario populations stream through the pool in O(workers) item memory.
///
/// # Panics
///
/// Panics if `contexts` is empty, if a [`Shard::ByKey`] key slice is shorter
/// than `len`, or propagates a panic from `f`.
pub fn map_indices_with_workers<C, R, F>(
    contexts: &mut [C],
    len: usize,
    shard: Shard<'_>,
    f: F,
) -> Vec<R>
where
    C: Send,
    R: Send,
    F: Fn(&mut C, usize) -> R + Sync,
{
    // Mapping is the fold whose accumulator is the `(index, result)` list:
    // each worker collects its own pairs, the per-worker lists concatenate
    // in worker order, and one slot pass restores input order.
    let pairs = fold_indices_with_workers(
        contexts,
        len,
        shard,
        Vec::new,
        |ctx, acc: &mut Vec<(usize, R)>, i| acc.push((i, f(ctx, i))),
        |into, from| into.extend(from),
    );
    merge_in_order(len, pairs)
}

/// The fold-capable core of the pool: runs `fold(ctx, acc, i)` for every
/// `i ∈ 0..len`, with item `i` assigned to a worker by `shard` and each
/// worker folding its indices in **ascending order** into its own
/// accumulator (built by `make_acc`). The per-worker accumulators are then
/// merged **deterministically in worker order** — `merge(&mut acc₀, acc₁)`,
/// then `merge(&mut acc₀, acc₂)`, … — and the combined accumulator is
/// returned.
///
/// This is what lets arbitrarily large batches aggregate on the fly: where
/// [`map_indices_with_workers`] materializes one result per index, a fold
/// keeps only `contexts.len()` accumulators alive, so result memory is
/// O(workers) no matter how large `len` grows.
///
/// ## Determinism
///
/// The schedule (which worker folds which indices, in which order) and the
/// merge order are pure functions of `(len, contexts.len(), shard)`. For
/// the *final accumulator* to be identical at every worker count, the
/// caller's `fold`/`merge` pair must additionally be insensitive to how the
/// index stream is partitioned — e.g. because the accumulator keeps
/// per-index slots, or because the folded operation is associative and
/// commutative in exact arithmetic. Plain floating-point accumulation is
/// *not* (addition order changes the bits); fold per-index values and
/// reduce them in a fixed order instead.
///
/// # Panics
///
/// Panics if `contexts` is empty, if a keyed [`Shard`]'s key slice is
/// shorter than `len`, or propagates a panic from `fold`.
pub fn fold_indices_with_workers<C, A, FInit, F, M>(
    contexts: &mut [C],
    len: usize,
    shard: Shard<'_>,
    make_acc: FInit,
    fold: F,
    mut merge: M,
) -> A
where
    C: Send,
    A: Send,
    FInit: Fn() -> A + Sync,
    F: Fn(&mut C, &mut A, usize) + Sync,
    M: FnMut(&mut A, A),
{
    assert!(!contexts.is_empty(), "exec requires at least one worker");
    if contexts.len() == 1 || len <= 1 {
        // Validate the keys on the inline path (without computing the full
        // assignment) so misuse surfaces identically at every worker count.
        shard.validate(len);
        let ctx = &mut contexts[0];
        let mut acc = make_acc();
        for i in 0..len {
            fold(ctx, &mut acc, i);
        }
        return acc;
    }
    let threads = contexts.len();
    // Round-robin needs no materialized schedule — worker `w` walks the
    // stepped range `w, w + threads, …` — so a round-robin fold's memory
    // really is O(workers). For the keyed strategies one O(len) pass builds
    // each worker's index list; workers then walk their own (ascending)
    // list instead of rescanning the whole range.
    let mut shards: Vec<Option<Vec<usize>>> = if shard.keys().is_none() {
        vec![None; threads]
    } else {
        shard
            .worker_lists(len, threads)
            .into_iter()
            .map(Some)
            .collect()
    };
    let accs = std::thread::scope(|scope| {
        let fold = &fold;
        let make_acc = &make_acc;
        let handles: Vec<_> = contexts
            .iter_mut()
            .zip(shards.drain(..))
            .enumerate()
            .map(|(w, (ctx, indices))| {
                scope.spawn(move || {
                    let mut acc = make_acc();
                    match indices {
                        None => {
                            for i in (w..len).step_by(threads) {
                                fold(ctx, &mut acc, i);
                            }
                        }
                        Some(indices) => {
                            for i in indices {
                                fold(ctx, &mut acc, i);
                            }
                        }
                    }
                    acc
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("exec worker panicked"))
            .collect::<Vec<_>>()
    });
    let mut accs = accs.into_iter();
    let mut merged = accs.next().expect("at least one worker");
    for acc in accs {
        merge(&mut merged, acc);
    }
    merged
}

/// The worker count actually used for an input: at least 1, never more than
/// the number of items.
#[must_use]
pub fn effective_workers(threads: usize, items: usize) -> usize {
    threads.max(1).min(items.max(1))
}

/// Merges concatenated `(index, result)` pairs back into input order.
fn merge_in_order<R>(len: usize, pairs: Vec<(usize, R)>) -> Vec<R> {
    let mut slots: Vec<Option<R>> = (0..len).map(|_| None).collect();
    for (i, r) in pairs {
        debug_assert!(slots[i].is_none(), "index {i} produced twice");
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index produced exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_indexed_preserves_input_order_at_any_thread_count() {
        let items: Vec<usize> = (0..37).collect();
        let expected: Vec<usize> = items.iter().map(|x| x * 3).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = map_indexed(threads, &items, |i, x| {
                assert_eq!(i, *x);
                x * 3
            });
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn map_indexed_handles_empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(map_indexed(4, &empty, |_, x| *x).is_empty());
        assert_eq!(map_indexed(4, &[7u32], |_, x| x + 1), vec![8]);
    }

    #[test]
    fn map_with_workers_shards_round_robin() {
        // Record which worker saw which index: index i must land on worker
        // i % workers, by construction.
        let items: Vec<usize> = (0..20).collect();
        let mut seen: Vec<Vec<usize>> = vec![Vec::new(); 3];
        let _ = map_with_workers(&mut seen, &items, |bucket, i, _| {
            bucket.push(i);
            i
        });
        for (w, bucket) in seen.iter().enumerate() {
            let expected: Vec<usize> = (0..20).skip(w).step_by(3).collect();
            assert_eq!(bucket, &expected, "worker {w}");
        }
    }

    #[test]
    fn map_with_workers_single_context_runs_inline() {
        let mut ctx = vec![0u64];
        let out = map_with_workers(&mut ctx, &[1u64, 2, 3], |c, _, x| {
            *c += x;
            *x
        });
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(ctx[0], 6);
    }

    #[test]
    fn keyed_sharding_groups_items_by_key_with_identical_output() {
        // 24 items over 2 "platforms" (keys 10 and 11), laid out in two
        // contiguous halves — the layout where round-robin spreads every
        // platform across every worker.
        let items: Vec<usize> = (0..24).collect();
        let keys: Vec<u64> = (0..24).map(|i| if i < 12 { 10 } else { 11 }).collect();
        let expected: Vec<usize> = items.iter().map(|x| x + 100).collect();

        for workers in [1, 2, 3, 8] {
            let mut seen: Vec<Vec<u64>> = vec![Vec::new(); workers];
            let got =
                map_with_workers_sharded(&mut seen, &items, Shard::ByKey(&keys), |b, i, x| {
                    b.push(keys[i]);
                    x + 100
                });
            assert_eq!(got, expected, "workers={workers}");
            let owners = |key: u64| -> Vec<usize> {
                seen.iter()
                    .enumerate()
                    .filter(|(_, bucket)| bucket.contains(&key))
                    .map(|(w, _)| w)
                    .collect()
            };
            let (a, b) = (owners(10), owners(11));
            if workers >= 2 {
                // With two keys and at least two workers the keys' worker
                // sets are disjoint (locality) and every worker is busy
                // (no idle workers from raw-key collisions).
                assert!(a.iter().all(|w| !b.contains(w)), "{a:?} vs {b:?}");
                assert_eq!(a.len() + b.len(), workers, "workers={workers}");
            }
            if workers == 2 {
                // As many keys as workers: whole key groups, one per worker.
                assert_eq!((a.len(), b.len()), (1, 1));
            }
        }
    }

    #[test]
    fn keyed_sharding_uses_every_worker_for_a_single_key() {
        // One platform, many workers: the batch must spread over every
        // worker (in contiguous, equal blocks) instead of serializing on
        // one worker.
        let keys = vec![42u64; 12];
        let assignment = Shard::ByKey(&keys).assignments(12, 4);
        assert_eq!(assignment, vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3]);
    }

    #[test]
    fn keyed_sharding_is_insensitive_to_raw_key_values() {
        // Adversarial keys that collide modulo the worker count: dense
        // ranking still spreads the four groups over all four workers.
        let keys: Vec<u64> = (0..16).map(|i| (i as u64 / 4) * 8).collect();
        let assignment = Shard::ByKey(&keys).assignments(16, 4);
        let mut used: Vec<usize> = assignment.clone();
        used.sort_unstable();
        used.dedup();
        assert_eq!(used, vec![0, 1, 2, 3], "{assignment:?}");
        // Each group of four identical keys stays on one worker.
        for group in assignment.chunks(4) {
            assert!(group.windows(2).all(|w| w[0] == w[1]), "{assignment:?}");
        }
    }

    #[test]
    fn index_driven_mapping_visits_each_worker_shard_in_ascending_order() {
        let mut orders: Vec<Vec<usize>> = vec![Vec::new(); 3];
        let out = map_indices_with_workers(&mut orders, 20, Shard::RoundRobin, |bucket, i| {
            bucket.push(i);
            i * 2
        });
        assert_eq!(out, (0..20).map(|i| i * 2).collect::<Vec<_>>());
        for bucket in &orders {
            assert!(bucket.windows(2).all(|w| w[0] < w[1]), "{bucket:?}");
        }
    }

    #[test]
    fn shard_assignments_are_a_pure_function_of_keys_and_workers() {
        let keys = [7u64, 8, 9, 7];
        assert_eq!(Shard::RoundRobin.assignments(5, 3), vec![0, 1, 2, 0, 1]);
        // Dense ranks: 7 -> 0, 8 -> 1, 9 -> 2; three keys on three workers.
        assert_eq!(Shard::ByKey(&keys).assignments(4, 3), vec![0, 1, 2, 0]);
        // Single worker: everything lands on worker 0 under any strategy.
        assert_eq!(Shard::ByKey(&keys).assignments(4, 1), vec![0; 4]);
        // Two keys, five workers: contiguous worker ranges [0, 2) and
        // [2, 5), each key's occurrences split into contiguous blocks (key
        // 5: four occurrences, block 2; key 6: three occurrences, block 1).
        let two = [5u64, 5, 5, 6, 6, 6, 5];
        assert_eq!(
            Shard::ByKey(&two).assignments(7, 5),
            vec![0, 0, 1, 2, 3, 4, 1]
        );
    }

    #[test]
    #[should_panic(expected = "shard keys")]
    fn short_key_slices_are_rejected() {
        let keys = [1u64];
        let mut ctx = [(), ()];
        let _ = map_indices_with_workers(&mut ctx, 5, Shard::ByKey(&keys), |_, i| i);
    }

    /// The set of workers each distinct key's items land on.
    fn owners_by_key(keys: &[u64], assignment: &[usize]) -> Vec<(u64, Vec<usize>)> {
        let mut distinct: Vec<u64> = keys.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        distinct
            .into_iter()
            .map(|key| {
                let mut workers: Vec<usize> = keys
                    .iter()
                    .zip(assignment)
                    .filter(|(k, _)| **k == key)
                    .map(|(_, w)| *w)
                    .collect();
                workers.sort_unstable();
                workers.dedup();
                (key, workers)
            })
            .collect()
    }

    #[test]
    fn keyed_ranking_is_a_pure_function_of_the_key_multiset() {
        // Reversing (or otherwise permuting) the items must not change
        // which worker owns a key: ranking is by key value, not by first
        // appearance. A first-appearance ranking fails this immediately.
        let keys: Vec<u64> = (0..24).map(|i| 100 + (i as u64 / 6)).collect();
        let reversed: Vec<u64> = keys.iter().rev().copied().collect();
        for workers in [2, 3, 4, 8] {
            for shard in [Shard::ByKey, Shard::SplitHotKeys] {
                let forward = owners_by_key(&keys, &shard(&keys).assignments(24, workers));
                let backward = owners_by_key(&reversed, &shard(&reversed).assignments(24, workers));
                assert_eq!(forward, backward, "workers={workers}");
            }
        }
    }

    #[test]
    fn split_hot_keys_spreads_a_dominant_key_over_several_workers() {
        // Key 7 owns 20 of 24 items (>80 %); key 9 owns 4. With as many
        // keys as workers, ByKey serializes key 7 entirely on one worker —
        // the critical path the refinement exists to break. SplitHotKeys
        // must hand key 7 to >= 2 workers while key 9 keeps exactly one.
        let keys: Vec<u64> = (0..24).map(|i| if i < 20 { 7 } else { 9 }).collect();
        let by_key = owners_by_key(&keys, &Shard::ByKey(&keys).assignments(24, 2));
        assert_eq!(by_key[0].1.len(), 1, "{by_key:?}");

        for workers in [2usize, 4] {
            let split = Shard::SplitHotKeys(&keys).assignments(24, workers);
            let owners = owners_by_key(&keys, &split);
            assert!(
                owners[0].1.len() >= 2,
                "hot key not split at {workers} workers: {owners:?}"
            );
            assert_eq!(
                owners[1].1.len(),
                1,
                "cold key lost locality at {workers} workers: {owners:?}"
            );
            // No worker holds more of the hot key than the fair-share
            // threshold of ceil(24/workers).
            let threshold = 24usize.div_ceil(workers);
            for worker in 0..workers {
                let cells = split
                    .iter()
                    .zip(&keys)
                    .filter(|(w, k)| **w == worker && **k == 7)
                    .count();
                assert!(
                    cells <= threshold,
                    "worker {worker} holds {cells} hot cells"
                );
            }
        }
    }

    #[test]
    fn keyed_sharding_keeps_every_worker_busy_when_items_cover_the_range() {
        // Regression: ceil-sized blocks once left workers idle whenever a
        // key's count did not divide its worker range (9 items on 8 workers
        // used only 5 of them). The balanced partition must hand every
        // worker of the range at least one item when count >= width, with
        // block sizes within one of each other.
        for (len, workers) in [(9usize, 8usize), (11, 8), (13, 5), (24, 7), (8, 8)] {
            let keys = vec![77u64; len];
            for shard in [Shard::ByKey(&keys), Shard::SplitHotKeys(&keys)] {
                let assignment = shard.assignments(len, workers);
                let mut loads = vec![0usize; workers];
                for &w in &assignment {
                    loads[w] += 1;
                }
                assert!(
                    loads.iter().all(|&l| l > 0),
                    "{shard:?} idles workers for {len} items on {workers}: {loads:?}"
                );
                let (min, max) = (loads.iter().min().unwrap(), loads.iter().max().unwrap());
                assert!(max - min <= 1, "{shard:?} unbalanced: {loads:?}");
            }
        }
    }

    #[test]
    fn split_hot_keys_matches_by_key_when_no_key_is_hot() {
        // Four keys of equal share at 4 workers: nothing exceeds the
        // threshold, so the split strategy degenerates to plain ByKey.
        let keys: Vec<u64> = (0..16).map(|i| i as u64 / 4).collect();
        assert_eq!(
            Shard::SplitHotKeys(&keys).assignments(16, 4),
            Shard::ByKey(&keys).assignments(16, 4)
        );
    }

    #[test]
    fn split_hot_cost_isolates_a_dominant_cost_item() {
        // One key, 13 items: item 0 costs 100, the rest cost 1. Count-based
        // splitting would hand the worker owning item 0 a third of the
        // remaining items too; cost-based splitting must leave the dominant
        // item alone on its worker while the cheap items spread over the
        // others.
        let keys = vec![7u64; 13];
        let mut costs = vec![1u64; 13];
        costs[0] = 100;
        let shard = Shard::SplitHotCost {
            keys: &keys,
            costs: &costs,
        };
        let assignment = shard.assignments(13, 4);
        let hot_worker = assignment[0];
        let companions = assignment[1..].iter().filter(|&&w| w == hot_worker).count();
        assert_eq!(
            companions, 0,
            "dominant-cost item must run alone: {assignment:?}"
        );
        // Every worker is busy, and the cheap items spread evenly.
        let mut loads = [0usize; 4];
        for &w in &assignment {
            loads[w] += 1;
        }
        assert!(loads.iter().all(|&l| l > 0), "{assignment:?}");
    }

    #[test]
    fn cost_strategies_keep_cold_key_locality() {
        // Two keys of equal modest cost at 2 workers: nothing is hot, so
        // both cost strategies behave like ByKey — one whole key per
        // worker, disjoint owner sets.
        let keys: Vec<u64> = (0..8).map(|i| i as u64 / 4).collect();
        let costs = vec![3u64; 8];
        for shard in [
            Shard::ByCostKeyed {
                keys: &keys,
                costs: &costs,
            },
            Shard::SplitHotCost {
                keys: &keys,
                costs: &costs,
            },
        ] {
            let owners = owners_by_key(&keys, &shard.assignments(8, 2));
            assert_eq!(owners[0].1.len(), 1, "{shard:?}: {owners:?}");
            assert_eq!(owners[1].1.len(), 1, "{shard:?}: {owners:?}");
            assert_ne!(owners[0].1, owners[1].1, "{shard:?}: {owners:?}");
        }
    }

    #[test]
    fn by_cost_keyed_balances_worker_cost_not_item_count() {
        // Four keys at 2 workers: key 0 costs 90, keys 1-3 cost 10 each.
        // ByKey's rank % workers puts keys {0, 2} vs {1, 3} => 100 vs 20.
        // Cost-LPT must pair the expensive key alone against the three
        // cheap ones: 90 vs 30.
        let keys: Vec<u64> = (0..8).map(|i| i as u64 / 2).collect();
        let costs: Vec<u64> = (0..8).map(|i| if i < 2 { 45 } else { 5 }).collect();
        let shard = Shard::ByCostKeyed {
            keys: &keys,
            costs: &costs,
        };
        let assignment = shard.assignments(8, 2);
        let mut worker_cost = [0u64; 2];
        for (i, &w) in assignment.iter().enumerate() {
            worker_cost[w] += costs[i];
        }
        let worst = worker_cost.iter().max().unwrap();
        assert_eq!(*worst, 90, "{assignment:?} -> {worker_cost:?}");
        // And the expensive key kept locality: exactly one owner.
        let owners = owners_by_key(&keys, &assignment);
        assert_eq!(owners[0].1.len(), 1, "{owners:?}");
    }

    #[test]
    fn cost_ownership_is_a_pure_function_of_the_key_cost_multiset() {
        // The cost-weighted spelling of the purity property: permuting the
        // (key, cost) pairs never changes which workers own a key.
        use crate::rng::SplitMix64;
        let mut rng = SplitMix64::new(0xC057_C057);
        for round in 0..200u32 {
            let len = 2 + (rng.next_u64() % 40) as usize;
            let distinct = 1 + rng.next_u64() % 5;
            let pairs: Vec<(u64, u64)> = (0..len)
                .map(|_| {
                    let key = (rng.next_u64() % distinct).wrapping_mul(0x9E37_79B9);
                    let cost = 1 + rng.next_u64() % 50;
                    (key, cost)
                })
                .collect();
            let mut permuted = pairs.clone();
            permuted.rotate_left((rng.next_u64() as usize) % len);
            permuted.reverse();
            let workers = 1 + (rng.next_u64() % 8) as usize;
            let unzip = |p: &[(u64, u64)]| -> (Vec<u64>, Vec<u64>) { p.iter().copied().unzip() };
            let (keys, costs) = unzip(&pairs);
            let (pkeys, pcosts) = unzip(&permuted);
            for hot in [false, true] {
                let shard = |k: &'_ [u64], c: &'_ [u64]| {
                    if hot {
                        Shard::SplitHotCost { keys: k, costs: c }.assignments(len, workers)
                    } else {
                        Shard::ByCostKeyed { keys: k, costs: c }.assignments(len, workers)
                    }
                };
                let original = owners_by_key(&keys, &shard(&keys, &costs));
                let shuffled = owners_by_key(&pkeys, &shard(&pkeys, &pcosts));
                assert_eq!(
                    original, shuffled,
                    "round {round}: cost ownership changed under permutation \
                     (len={len}, workers={workers}, hot={hot})"
                );
            }
        }
    }

    #[test]
    fn cost_strategies_with_uniform_costs_keep_every_worker_busy() {
        // Uniform costs degrade to count balancing: every worker must stay
        // busy whenever there are at least as many items as workers.
        for (len, workers) in [(9usize, 8usize), (11, 8), (13, 5), (24, 7), (8, 8)] {
            let keys = vec![77u64; len];
            let costs = vec![5u64; len];
            for shard in [
                Shard::ByCostKeyed {
                    keys: &keys,
                    costs: &costs,
                },
                Shard::SplitHotCost {
                    keys: &keys,
                    costs: &costs,
                },
            ] {
                let assignment = shard.assignments(len, workers);
                let mut loads = vec![0usize; workers];
                for &w in &assignment {
                    loads[w] += 1;
                }
                assert!(
                    loads.iter().all(|&l| l > 0),
                    "{shard:?} idles workers for {len} items on {workers}: {loads:?}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "shard costs")]
    fn short_cost_slices_are_rejected() {
        let keys = [1u64; 5];
        let costs = [1u64];
        let mut ctx = [(), ()];
        let _ = map_indices_with_workers(
            &mut ctx,
            5,
            Shard::ByCostKeyed {
                keys: &keys,
                costs: &costs,
            },
            |_, i| i,
        );
    }

    #[test]
    fn fold_merges_worker_accumulators_in_worker_order() {
        // Accumulate the visited indices: the merged list must be the
        // concatenation of the worker shards, each ascending, in worker
        // order — the documented merge contract.
        let mut ctxs = vec![(); 3];
        let folded = fold_indices_with_workers(
            &mut ctxs,
            10,
            Shard::RoundRobin,
            Vec::new,
            |_, acc: &mut Vec<usize>, i| acc.push(i),
            |into, from| into.extend(from),
        );
        assert_eq!(folded, vec![0, 3, 6, 9, 1, 4, 7, 2, 5, 8]);
    }

    #[test]
    fn fold_with_per_index_slots_is_worker_count_invariant() {
        // A fold whose accumulator keeps per-index slots (the pattern the
        // scenario-layer consumers use) produces bit-identical output at
        // every worker count, under every strategy.
        let len = 37usize;
        let keys: Vec<u64> = (0..len).map(|i| (i as u64) % 5).collect();
        let costs: Vec<u64> = (0..len).map(|i| 1 + (i as u64 % 7) * 13).collect();
        let expected: Vec<u64> = (0..len as u64).map(|i| i * i).collect();
        for workers in [1, 2, 3, 8] {
            for shard in [
                Shard::RoundRobin,
                Shard::ByKey(&keys),
                Shard::SplitHotKeys(&keys),
                Shard::ByCostKeyed {
                    keys: &keys,
                    costs: &costs,
                },
                Shard::SplitHotCost {
                    keys: &keys,
                    costs: &costs,
                },
            ] {
                let mut ctxs = vec![(); workers];
                let folded = fold_indices_with_workers(
                    &mut ctxs,
                    len,
                    shard,
                    || vec![0u64; len],
                    |_, slots: &mut Vec<u64>, i| slots[i] = (i as u64) * (i as u64),
                    |into, from| {
                        for (slot, value) in into.iter_mut().zip(from) {
                            *slot += value;
                        }
                    },
                );
                assert_eq!(folded, expected, "workers={workers} {shard:?}");
            }
        }
    }

    #[test]
    fn fold_runs_inline_with_one_worker() {
        let mut ctxs = vec![0u64];
        let sum = fold_indices_with_workers(
            &mut ctxs,
            5,
            Shard::RoundRobin,
            || 0u64,
            |ctx, acc, i| {
                *ctx += 1;
                *acc += i as u64;
            },
            |_, _| panic!("no merge with one worker"),
        );
        assert_eq!(sum, 10);
        assert_eq!(ctxs[0], 5, "inline path visits every index");
    }

    #[test]
    fn effective_workers_clamps_both_ends() {
        assert_eq!(effective_workers(0, 10), 1);
        assert_eq!(effective_workers(8, 3), 3);
        assert_eq!(effective_workers(4, 0), 1);
        assert_eq!(effective_workers(2, 100), 2);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
        assert!(default_procs() >= 1);
    }

    #[test]
    fn resolve_parallelism_prefers_cli_then_env_then_detected() {
        // CLI beats env beats detected.
        assert_eq!(resolve_from(Some(3), Some("7"), 16), (3, None));
        assert_eq!(resolve_from(None, Some("7"), 16), (7, None));
        assert_eq!(resolve_from(None, None, 16), (16, None));
        // A zero CLI value falls through to the env.
        assert_eq!(resolve_from(Some(0), Some("5"), 16), (5, None));
        assert_eq!(resolve_from(None, Some(" 12 "), 4), (12, None));
        // Explicit values are not capped; the detected floor is 1.
        assert_eq!(resolve_from(Some(64), None, 2), (64, None));
        assert_eq!(resolve_from(None, Some("64"), 2), (64, None));
        assert_eq!(resolve_from(None, None, 0), (1, None));
    }

    #[test]
    fn resolve_parallelism_diagnoses_unusable_env_values() {
        // Malformed and zero env values fall back to the detected count —
        // but *say so*, instead of silently running at the wrong width.
        let rejected = |value: &str, detected: usize| {
            let (resolved, reason) = resolve_from(None, Some(value), detected);
            assert!(
                reason.is_some(),
                "env value {value:?} must surface a diagnostic"
            );
            resolved
        };
        assert_eq!(rejected("0", 4), 4);
        assert_eq!(rejected(" 0 ", 4), 4);
        assert_eq!(rejected("4x", 4), 4);
        assert_eq!(rejected("-2", 4), 4);
        assert_eq!(rejected("not a number", 4), 4);
        assert_eq!(rejected("1.5", 4), 4);

        // Empty and whitespace-only values are the conventional "unset"
        // spelling: no diagnostic, straight to the detected count.
        assert_eq!(resolve_from(None, Some(""), 4), (4, None));
        assert_eq!(resolve_from(None, Some("   "), 4), (4, None));
        assert_eq!(resolve_from(None, Some("\t"), 4), (4, None));

        // A CLI pin wins before the env value is even looked at.
        assert_eq!(resolve_from(Some(3), Some("4x"), 16), (3, None));
    }

    #[test]
    fn worker_lists_are_ascending_and_tile_the_input() {
        let keys: Vec<u64> = (0..40).map(|i| [10, 10, 10, 20, 30][i % 5]).collect();
        let costs: Vec<u64> = (0..40).map(|i| 1 + (i as u64 % 7)).collect();
        for shard in [
            Shard::RoundRobin,
            Shard::ByKey(&keys),
            Shard::SplitHotKeys(&keys),
            Shard::ByCostKeyed {
                keys: &keys,
                costs: &costs,
            },
            Shard::SplitHotCost {
                keys: &keys,
                costs: &costs,
            },
        ] {
            for workers in [1usize, 2, 3, 5] {
                let lists = shard.worker_lists(40, workers);
                assert_eq!(lists.len(), workers);
                for list in &lists {
                    assert!(list.windows(2).all(|w| w[0] < w[1]), "ascending per slot");
                }
                let mut all: Vec<usize> = lists.iter().flatten().copied().collect();
                all.sort_unstable();
                assert_eq!(all, (0..40).collect::<Vec<_>>(), "lists tile the input");
                // The lists are exactly the assignment, regrouped.
                let assignments = shard.assignments(40, workers);
                for (w, list) in lists.iter().enumerate() {
                    for &i in list {
                        assert_eq!(assignments[i], w);
                    }
                }
            }
        }
    }

    #[test]
    fn cost_quantile_chunks_balance_by_cost_not_count() {
        // One 100x item among cheap ones: quantile boundaries isolate it.
        let items: Vec<usize> = (0..10).collect();
        let costs = |i: usize| if i == 3 { 100 } else { 1 };
        let plan = cost_quantile_chunks(&items, costs, 4);
        assert_eq!(plan.len(), 4);
        assert_eq!(
            plan.iter().flatten().copied().collect::<Vec<_>>(),
            items,
            "chunks stay contiguous and in order"
        );
        assert!(plan.iter().all(|c| !c.is_empty()));
        // The expensive item's chunk carries few cheap neighbours.
        let hot = plan.iter().find(|c| c.contains(&3)).unwrap();
        assert!(hot.len() <= 4, "hot chunk dragged {} items", hot.len());
        // More chunks than items clamps; empty input yields no chunks.
        assert_eq!(cost_quantile_chunks(&[5, 9], |_| 1, 4).len(), 2);
        assert!(cost_quantile_chunks(&[], |_| 1, 4).is_empty());
        // Zero costs count as one: no division-shaped surprises.
        assert_eq!(cost_quantile_chunks(&items, |_| 0, 5).len(), 5);
    }

    #[test]
    fn incremental_fold_matches_the_one_shot_fold() {
        // Reference: one-shot fold summing (index+1)^2 per worker slot,
        // merged in worker order into a Vec of partial sums.
        let keys: Vec<u64> = (0..30).map(|i| (i as u64) % 4).collect();
        let shard = Shard::ByKey(&keys);
        let workers = 3;
        let mut contexts = vec![(); workers];
        let reference = fold_indices_with_workers(
            &mut contexts,
            30,
            Shard::ByKey(&keys),
            Vec::new,
            |(), acc: &mut Vec<u64>, i| acc.push(((i as u64) + 1) * ((i as u64) + 1)),
            |into, from| into.extend(from),
        );

        // Resumable: cut each slot's list into cost-quantile chunks and
        // fold them in an adversarial interleaving (round-robin across
        // slots), checking accumulators in and out at every boundary.
        let lists = shard.worker_lists(30, workers);
        let mut fold: IncrementalFold<Vec<u64>> = IncrementalFold::new(workers, Vec::new);
        let mut chunks: Vec<std::collections::VecDeque<Vec<usize>>> = lists
            .iter()
            .map(|list| cost_quantile_chunks(list, |_| 1, 4).into())
            .collect();
        while chunks.iter().any(|c| !c.is_empty()) {
            for (slot, queue) in chunks.iter_mut().enumerate() {
                let Some(chunk) = queue.pop_front() else {
                    continue;
                };
                let mut acc = fold.checkout(slot, chunk[0]);
                for i in &chunk {
                    acc.push(((*i as u64) + 1) * ((*i as u64) + 1));
                }
                let next = chunk.last().unwrap() + 1;
                fold.restore(slot, acc, next);
            }
        }
        assert!(fold.is_idle());
        let merged = fold.finish(|into, from| into.extend(from));
        assert_eq!(merged, reference, "interleaved fold must be bit-identical");
    }

    #[test]
    #[should_panic(expected = "below watermark")]
    fn incremental_fold_rejects_out_of_order_chunks() {
        let mut fold: IncrementalFold<Vec<u64>> = IncrementalFold::new(2, Vec::new);
        let acc = fold.checkout(0, 5);
        fold.restore(0, acc, 10);
        let _ = fold.checkout(0, 4); // regresses below the watermark
    }

    #[test]
    #[should_panic(expected = "already checked out")]
    fn incremental_fold_rejects_concurrent_slot_checkout() {
        let mut fold: IncrementalFold<Vec<u64>> = IncrementalFold::new(1, Vec::new);
        let _acc = fold.checkout(0, 0);
        let _ = fold.checkout(0, 0);
    }
}
