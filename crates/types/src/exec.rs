//! A small, deterministic, work-stealing-free scoped worker pool.
//!
//! The SysScale evaluation is an embarrassingly parallel matrix of
//! independent simulation cells. This module provides the minimal execution
//! primitive that matrix needs — and deliberately nothing more:
//!
//! * **static sharding** — worker `w` of `n` processes items
//!   `w, w + n, w + 2n, …` (round-robin). There is no work stealing and no
//!   shared queue, so the item→worker assignment is a pure function of
//!   `(item index, worker count)` and every run of the same input is
//!   scheduled identically;
//! * **stable output order** — results are returned indexed by the *input*
//!   position, never by completion order, so callers observe output that is
//!   independent of thread interleaving;
//! * **scoped threads** — built on [`std::thread::scope`], so borrowed items
//!   and per-worker contexts need no `'static` lifetimes and no reference
//!   counting.
//!
//! Determinism caveat: the pool guarantees deterministic *scheduling* and
//! *ordering*. Bit-identical results additionally require that the mapped
//! function itself is a pure function of `(index, item, worker context)` and
//! that per-worker contexts are interchangeable (e.g. caches only).
//!
//! ## Example
//!
//! ```
//! use sysscale_types::exec;
//!
//! let squares = exec::map_indexed(4, &[1, 2, 3, 4, 5], |_i, x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//!
//! // Per-worker mutable contexts (one accumulator per worker):
//! let mut sums = vec![0u64; 2];
//! let doubled = exec::map_with_workers(&mut sums, &[1u64, 2, 3], |sum, _i, x| {
//!     *sum += x;
//!     x * 2
//! });
//! assert_eq!(doubled, vec![2, 4, 6]);
//! assert_eq!(sums.iter().sum::<u64>(), 6);
//! ```

use std::num::NonZeroUsize;

/// Environment variable overriding [`default_threads`].
pub const THREADS_ENV: &str = "SYSSCALE_THREADS";

/// Upper bound [`default_threads`] applies to the detected parallelism (an
/// explicit [`THREADS_ENV`] value may exceed it).
pub const MAX_AUTO_THREADS: usize = 16;

/// The worker count batch executors use when the caller does not pin one:
/// the `SYSSCALE_THREADS` environment variable if set to a positive integer,
/// otherwise [`std::thread::available_parallelism`] capped at
/// [`MAX_AUTO_THREADS`] (one simulation cell saturates one core; beyond the
/// physical core count extra workers only cost memory).
#[must_use]
pub fn default_threads() -> usize {
    if let Ok(value) = std::env::var(THREADS_ENV) {
        if let Ok(n) = value.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(MAX_AUTO_THREADS)
}

/// Maps `f` over `items` on up to `threads` scoped workers and returns the
/// results in input order.
///
/// Sharding is static round-robin (worker `w` takes indices
/// `w, w + threads, …`), so both the schedule and the output order are
/// deterministic for a given `(items.len(), threads)`. A `threads` of 1 (or
/// a single-item input) runs inline on the calling thread without spawning.
///
/// # Panics
///
/// Propagates a panic from `f` after the remaining workers finish.
pub fn map_indexed<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let mut contexts = vec![(); effective_workers(threads, items.len())];
    map_with_workers(&mut contexts, items, |(), i, x| f(i, x))
}

/// Like [`map_indexed`], but each worker additionally owns one mutable
/// context from `contexts` for the duration of the run (a simulator cache, an
/// accumulator, a scratch buffer). The worker count *is* `contexts.len()`.
///
/// Item `i` is processed by worker `i % contexts.len()` — the same static
/// round-robin shard as [`map_indexed`] — and results come back in input
/// order.
///
/// # Panics
///
/// Panics if `contexts` is empty; propagates a panic from `f`.
pub fn map_with_workers<C, T, R, F>(contexts: &mut [C], items: &[T], f: F) -> Vec<R>
where
    C: Send,
    T: Sync,
    R: Send,
    F: Fn(&mut C, usize, &T) -> R + Sync,
{
    assert!(!contexts.is_empty(), "exec requires at least one worker");
    if contexts.len() == 1 || items.len() <= 1 {
        let ctx = &mut contexts[0];
        return items
            .iter()
            .enumerate()
            .map(|(i, x)| f(ctx, i, x))
            .collect();
    }
    let threads = contexts.len();
    merge_in_order(
        items.len(),
        std::thread::scope(|scope| {
            let f = &f;
            let handles: Vec<_> = contexts
                .iter_mut()
                .enumerate()
                .map(|(w, ctx)| {
                    scope.spawn(move || {
                        items
                            .iter()
                            .enumerate()
                            .skip(w)
                            .step_by(threads)
                            .map(|(i, x)| (i, f(ctx, i, x)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("exec worker panicked"))
                .collect::<Vec<_>>()
        }),
    )
}

/// The worker count actually used for an input: at least 1, never more than
/// the number of items.
#[must_use]
pub fn effective_workers(threads: usize, items: usize) -> usize {
    threads.max(1).min(items.max(1))
}

/// Merges per-worker `(index, result)` shards back into input order.
fn merge_in_order<R>(len: usize, shards: Vec<Vec<(usize, R)>>) -> Vec<R> {
    let mut slots: Vec<Option<R>> = (0..len).map(|_| None).collect();
    for shard in shards {
        for (i, r) in shard {
            debug_assert!(slots[i].is_none(), "index {i} produced twice");
            slots[i] = Some(r);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index produced exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_indexed_preserves_input_order_at_any_thread_count() {
        let items: Vec<usize> = (0..37).collect();
        let expected: Vec<usize> = items.iter().map(|x| x * 3).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = map_indexed(threads, &items, |i, x| {
                assert_eq!(i, *x);
                x * 3
            });
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn map_indexed_handles_empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(map_indexed(4, &empty, |_, x| *x).is_empty());
        assert_eq!(map_indexed(4, &[7u32], |_, x| x + 1), vec![8]);
    }

    #[test]
    fn map_with_workers_shards_round_robin() {
        // Record which worker saw which index: index i must land on worker
        // i % workers, by construction.
        let items: Vec<usize> = (0..20).collect();
        let mut seen: Vec<Vec<usize>> = vec![Vec::new(); 3];
        let _ = map_with_workers(&mut seen, &items, |bucket, i, _| {
            bucket.push(i);
            i
        });
        for (w, bucket) in seen.iter().enumerate() {
            let expected: Vec<usize> = (0..20).skip(w).step_by(3).collect();
            assert_eq!(bucket, &expected, "worker {w}");
        }
    }

    #[test]
    fn map_with_workers_single_context_runs_inline() {
        let mut ctx = vec![0u64];
        let out = map_with_workers(&mut ctx, &[1u64, 2, 3], |c, _, x| {
            *c += x;
            *x
        });
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(ctx[0], 6);
    }

    #[test]
    fn effective_workers_clamps_both_ends() {
        assert_eq!(effective_workers(0, 10), 1);
        assert_eq!(effective_workers(8, 3), 3);
        assert_eq!(effective_workers(4, 0), 1);
        assert_eq!(effective_workers(2, 100), 2);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
