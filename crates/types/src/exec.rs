//! A small, deterministic, work-stealing-free scoped worker pool.
//!
//! The SysScale evaluation is an embarrassingly parallel matrix of
//! independent simulation cells. This module provides the minimal execution
//! primitive that matrix needs — and deliberately nothing more:
//!
//! * **static sharding** — the item→worker assignment is a pure function of
//!   `(item index, worker count, shard strategy)`. There is no work stealing
//!   and no shared queue, so every run of the same input is scheduled
//!   identically. Two strategies exist ([`Shard`]): plain round-robin
//!   (worker `w` of `n` processes items `w, w + n, w + 2n, …`) and keyed
//!   sharding (items sharing a key — e.g. simulation cells on the same
//!   platform — are grouped onto as few workers as possible while keeping
//!   every worker busy; see [`Shard::ByKey`]);
//! * **stable output order** — results are returned indexed by the *input*
//!   position, never by completion order, so callers observe output that is
//!   independent of thread interleaving;
//! * **scoped threads** — built on [`std::thread::scope`], so borrowed items
//!   and per-worker contexts need no `'static` lifetimes and no reference
//!   counting;
//! * **index-driven streaming** — [`map_indices_with_workers`] hands workers
//!   bare indices (always in ascending order per worker) instead of slice
//!   elements, so callers can pull items from a lazy per-worker generator
//!   and never materialize the full input.
//!
//! Determinism caveat: the pool guarantees deterministic *scheduling* and
//! *ordering*. Bit-identical results additionally require that the mapped
//! function itself is a pure function of `(index, item, worker context)` and
//! that per-worker contexts are interchangeable (e.g. caches only).
//!
//! ## Example
//!
//! ```
//! use sysscale_types::exec;
//!
//! let squares = exec::map_indexed(4, &[1, 2, 3, 4, 5], |_i, x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//!
//! // Per-worker mutable contexts (one accumulator per worker):
//! let mut sums = vec![0u64; 2];
//! let doubled = exec::map_with_workers(&mut sums, &[1u64, 2, 3], |sum, _i, x| {
//!     *sum += x;
//!     x * 2
//! });
//! assert_eq!(doubled, vec![2, 4, 6]);
//! assert_eq!(sums.iter().sum::<u64>(), 6);
//! ```

use std::num::NonZeroUsize;

/// Environment variable overriding [`default_threads`].
pub const THREADS_ENV: &str = "SYSSCALE_THREADS";

/// Upper bound [`default_threads`] applies to the detected parallelism (an
/// explicit [`THREADS_ENV`] value may exceed it).
pub const MAX_AUTO_THREADS: usize = 16;

/// The worker count batch executors use when the caller does not pin one:
/// the `SYSSCALE_THREADS` environment variable if set to a positive integer,
/// otherwise [`std::thread::available_parallelism`] capped at
/// [`MAX_AUTO_THREADS`] (one simulation cell saturates one core; beyond the
/// physical core count extra workers only cost memory).
#[must_use]
pub fn default_threads() -> usize {
    if let Ok(value) = std::env::var(THREADS_ENV) {
        if let Ok(n) = value.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(MAX_AUTO_THREADS)
}

/// How items are assigned to workers.
///
/// Both strategies are static: the assignment is a pure function of the item
/// index, the worker count, and (for keyed sharding) the caller-provided key
/// slice — never of timing. Changing the strategy changes *which worker*
/// processes an item, not the result order, so any mapped function that is a
/// pure function of `(index, item)` with interchangeable worker contexts
/// produces identical output under either strategy.
#[derive(Debug, Clone, Copy)]
pub enum Shard<'k> {
    /// Item `i` runs on worker `i % workers`. Balances load evenly across
    /// workers regardless of item content.
    RoundRobin,
    /// Items are grouped by key, with the key *values* irrelevant beyond
    /// equality: distinct keys are dense-ranked by first appearance (`K`
    /// distinct keys), so raw hash values can never collide two groups onto
    /// one worker while another sits idle.
    ///
    /// * `K ≥ workers` — group `g` runs entirely on worker `g % workers`:
    ///   items sharing a key always land on the same worker, so a
    ///   per-worker cache keyed on the same property (e.g. a simulator per
    ///   platform configuration) is built once per key instead of once per
    ///   `(worker, key)` pair, and the groups spread evenly.
    /// * `K < workers` — the workers are partitioned into `K` contiguous
    ///   groups and each key's items round-robin *within* their group:
    ///   every worker stays busy (a single-key batch degrades to plain
    ///   round-robin, not to one serialized worker) while each key's items
    ///   still touch the fewest workers possible.
    ByKey(&'k [u64]),
}

impl Shard<'_> {
    /// Computes the worker index for every item, as a pure function of
    /// `(len, workers)` and (for keyed sharding) the key slice.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero, or (for [`Shard::ByKey`]) if the key
    /// slice is shorter than `len`.
    #[must_use]
    pub fn assignments(&self, len: usize, workers: usize) -> Vec<usize> {
        assert!(workers > 0, "shard requires at least one worker");
        match self {
            Shard::RoundRobin => (0..len).map(|i| i % workers).collect(),
            Shard::ByKey(keys) => {
                assert!(
                    keys.len() >= len,
                    "shard keys ({}) shorter than the input ({len})",
                    keys.len()
                );
                // Dense-rank the keys by first appearance.
                let mut rank_of: std::collections::HashMap<u64, usize> =
                    std::collections::HashMap::new();
                let ranks: Vec<usize> = keys[..len]
                    .iter()
                    .map(|&key| {
                        let next = rank_of.len();
                        *rank_of.entry(key).or_insert(next)
                    })
                    .collect();
                let distinct = rank_of.len().max(1);
                if distinct >= workers {
                    return ranks.into_iter().map(|rank| rank % workers).collect();
                }
                // Fewer keys than workers: give rank `g` the contiguous
                // worker range [g·W/K, (g+1)·W/K) and round-robin its items
                // within it.
                let mut occurrence = vec![0usize; distinct];
                ranks
                    .into_iter()
                    .map(|rank| {
                        let start = rank * workers / distinct;
                        let width = (rank + 1) * workers / distinct - start;
                        let slot = occurrence[rank] % width;
                        occurrence[rank] += 1;
                        start + slot
                    })
                    .collect()
            }
        }
    }
}

/// Maps `f` over `items` on up to `threads` scoped workers and returns the
/// results in input order.
///
/// Sharding is static round-robin (worker `w` takes indices
/// `w, w + threads, …`), so both the schedule and the output order are
/// deterministic for a given `(items.len(), threads)`. A `threads` of 1 (or
/// a single-item input) runs inline on the calling thread without spawning.
///
/// # Panics
///
/// Propagates a panic from `f` after the remaining workers finish.
pub fn map_indexed<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let mut contexts = vec![(); effective_workers(threads, items.len())];
    map_with_workers(&mut contexts, items, |(), i, x| f(i, x))
}

/// Like [`map_indexed`], but each worker additionally owns one mutable
/// context from `contexts` for the duration of the run (a simulator cache, an
/// accumulator, a scratch buffer). The worker count *is* `contexts.len()`.
///
/// Item `i` is processed by worker `i % contexts.len()` — the same static
/// round-robin shard as [`map_indexed`] — and results come back in input
/// order.
///
/// # Panics
///
/// Panics if `contexts` is empty; propagates a panic from `f`.
pub fn map_with_workers<C, T, R, F>(contexts: &mut [C], items: &[T], f: F) -> Vec<R>
where
    C: Send,
    T: Sync,
    R: Send,
    F: Fn(&mut C, usize, &T) -> R + Sync,
{
    map_with_workers_sharded(contexts, items, Shard::RoundRobin, f)
}

/// Like [`map_with_workers`], but with an explicit [`Shard`] strategy
/// choosing which worker processes each item.
///
/// # Panics
///
/// Panics if `contexts` is empty, if a [`Shard::ByKey`] key slice is shorter
/// than `items`, or propagates a panic from `f`.
pub fn map_with_workers_sharded<C, T, R, F>(
    contexts: &mut [C],
    items: &[T],
    shard: Shard<'_>,
    f: F,
) -> Vec<R>
where
    C: Send,
    T: Sync,
    R: Send,
    F: Fn(&mut C, usize, &T) -> R + Sync,
{
    map_indices_with_workers(contexts, items.len(), shard, |ctx, i| f(ctx, i, &items[i]))
}

/// The index-driven core of the pool: runs `f(ctx, i)` for every
/// `i ∈ 0..len`, with item `i` assigned to worker `shard.worker_for(i)` and
/// each worker visiting its indices in **ascending order**. Results come
/// back in index order.
///
/// Because workers receive bare indices, `f` is free to produce the item for
/// index `i` however it likes — typically by advancing a lazy per-worker
/// generator kept inside the worker context `C`, which the ascending-order
/// guarantee makes a single forward pass. This is what lets million-cell
/// scenario populations stream through the pool in O(workers) item memory.
///
/// # Panics
///
/// Panics if `contexts` is empty, if a [`Shard::ByKey`] key slice is shorter
/// than `len`, or propagates a panic from `f`.
pub fn map_indices_with_workers<C, R, F>(
    contexts: &mut [C],
    len: usize,
    shard: Shard<'_>,
    f: F,
) -> Vec<R>
where
    C: Send,
    R: Send,
    F: Fn(&mut C, usize) -> R + Sync,
{
    assert!(!contexts.is_empty(), "exec requires at least one worker");
    if contexts.len() == 1 || len <= 1 {
        // Validate the keys on the inline path (without computing the full
        // assignment) so misuse surfaces identically at every worker count.
        if let Shard::ByKey(keys) = shard {
            assert!(
                keys.len() >= len,
                "shard keys ({}) shorter than the input ({len})",
                keys.len()
            );
        }
        let ctx = &mut contexts[0];
        return (0..len).map(|i| f(ctx, i)).collect();
    }
    let threads = contexts.len();
    // One O(len) pass builds each worker's index list; workers then walk
    // their own (ascending) list instead of rescanning the whole range.
    let mut shards: Vec<Vec<usize>> = vec![Vec::new(); threads];
    for (i, w) in shard.assignments(len, threads).into_iter().enumerate() {
        shards[w].push(i);
    }
    merge_in_order(
        len,
        std::thread::scope(|scope| {
            let f = &f;
            let handles: Vec<_> = contexts
                .iter_mut()
                .zip(shards)
                .map(|(ctx, indices)| {
                    scope.spawn(move || {
                        indices
                            .into_iter()
                            .map(|i| (i, f(ctx, i)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("exec worker panicked"))
                .collect::<Vec<_>>()
        }),
    )
}

/// The worker count actually used for an input: at least 1, never more than
/// the number of items.
#[must_use]
pub fn effective_workers(threads: usize, items: usize) -> usize {
    threads.max(1).min(items.max(1))
}

/// Merges per-worker `(index, result)` shards back into input order.
fn merge_in_order<R>(len: usize, shards: Vec<Vec<(usize, R)>>) -> Vec<R> {
    let mut slots: Vec<Option<R>> = (0..len).map(|_| None).collect();
    for shard in shards {
        for (i, r) in shard {
            debug_assert!(slots[i].is_none(), "index {i} produced twice");
            slots[i] = Some(r);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index produced exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_indexed_preserves_input_order_at_any_thread_count() {
        let items: Vec<usize> = (0..37).collect();
        let expected: Vec<usize> = items.iter().map(|x| x * 3).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = map_indexed(threads, &items, |i, x| {
                assert_eq!(i, *x);
                x * 3
            });
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn map_indexed_handles_empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(map_indexed(4, &empty, |_, x| *x).is_empty());
        assert_eq!(map_indexed(4, &[7u32], |_, x| x + 1), vec![8]);
    }

    #[test]
    fn map_with_workers_shards_round_robin() {
        // Record which worker saw which index: index i must land on worker
        // i % workers, by construction.
        let items: Vec<usize> = (0..20).collect();
        let mut seen: Vec<Vec<usize>> = vec![Vec::new(); 3];
        let _ = map_with_workers(&mut seen, &items, |bucket, i, _| {
            bucket.push(i);
            i
        });
        for (w, bucket) in seen.iter().enumerate() {
            let expected: Vec<usize> = (0..20).skip(w).step_by(3).collect();
            assert_eq!(bucket, &expected, "worker {w}");
        }
    }

    #[test]
    fn map_with_workers_single_context_runs_inline() {
        let mut ctx = vec![0u64];
        let out = map_with_workers(&mut ctx, &[1u64, 2, 3], |c, _, x| {
            *c += x;
            *x
        });
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(ctx[0], 6);
    }

    #[test]
    fn keyed_sharding_groups_items_by_key_with_identical_output() {
        // 24 items over 2 "platforms" (keys 10 and 11), laid out in two
        // contiguous halves — the layout where round-robin spreads every
        // platform across every worker.
        let items: Vec<usize> = (0..24).collect();
        let keys: Vec<u64> = (0..24).map(|i| if i < 12 { 10 } else { 11 }).collect();
        let expected: Vec<usize> = items.iter().map(|x| x + 100).collect();

        for workers in [1, 2, 3, 8] {
            let mut seen: Vec<Vec<u64>> = vec![Vec::new(); workers];
            let got =
                map_with_workers_sharded(&mut seen, &items, Shard::ByKey(&keys), |b, i, x| {
                    b.push(keys[i]);
                    x + 100
                });
            assert_eq!(got, expected, "workers={workers}");
            let owners = |key: u64| -> Vec<usize> {
                seen.iter()
                    .enumerate()
                    .filter(|(_, bucket)| bucket.contains(&key))
                    .map(|(w, _)| w)
                    .collect()
            };
            let (a, b) = (owners(10), owners(11));
            if workers >= 2 {
                // With two keys and at least two workers the keys' worker
                // sets are disjoint (locality) and every worker is busy
                // (no idle workers from raw-key collisions).
                assert!(a.iter().all(|w| !b.contains(w)), "{a:?} vs {b:?}");
                assert_eq!(a.len() + b.len(), workers, "workers={workers}");
            }
            if workers == 2 {
                // As many keys as workers: whole key groups, one per worker.
                assert_eq!((a.len(), b.len()), (1, 1));
            }
        }
    }

    #[test]
    fn keyed_sharding_uses_every_worker_for_a_single_key() {
        // One platform, many workers: the batch must round-robin instead of
        // serializing on one worker.
        let keys = vec![42u64; 12];
        let assignment = Shard::ByKey(&keys).assignments(12, 4);
        assert_eq!(assignment, (0..12).map(|i| i % 4).collect::<Vec<_>>());
    }

    #[test]
    fn keyed_sharding_is_insensitive_to_raw_key_values() {
        // Adversarial keys that collide modulo the worker count: dense
        // ranking still spreads the four groups over all four workers.
        let keys: Vec<u64> = (0..16).map(|i| (i as u64 / 4) * 8).collect();
        let assignment = Shard::ByKey(&keys).assignments(16, 4);
        let mut used: Vec<usize> = assignment.clone();
        used.sort_unstable();
        used.dedup();
        assert_eq!(used, vec![0, 1, 2, 3], "{assignment:?}");
        // Each group of four identical keys stays on one worker.
        for group in assignment.chunks(4) {
            assert!(group.windows(2).all(|w| w[0] == w[1]), "{assignment:?}");
        }
    }

    #[test]
    fn index_driven_mapping_visits_each_worker_shard_in_ascending_order() {
        let mut orders: Vec<Vec<usize>> = vec![Vec::new(); 3];
        let out = map_indices_with_workers(&mut orders, 20, Shard::RoundRobin, |bucket, i| {
            bucket.push(i);
            i * 2
        });
        assert_eq!(out, (0..20).map(|i| i * 2).collect::<Vec<_>>());
        for bucket in &orders {
            assert!(bucket.windows(2).all(|w| w[0] < w[1]), "{bucket:?}");
        }
    }

    #[test]
    fn shard_assignments_are_a_pure_function_of_keys_and_workers() {
        let keys = [7u64, 8, 9, 7];
        assert_eq!(Shard::RoundRobin.assignments(5, 3), vec![0, 1, 2, 0, 1]);
        // Dense ranks: 7 -> 0, 8 -> 1, 9 -> 2; three keys on three workers.
        assert_eq!(Shard::ByKey(&keys).assignments(4, 3), vec![0, 1, 2, 0]);
        // Single worker: everything lands on worker 0 under any strategy.
        assert_eq!(Shard::ByKey(&keys).assignments(4, 1), vec![0; 4]);
        // Two keys, five workers: contiguous groups [0, 2) and [2, 5), each
        // round-robined by its own items.
        let two = [5u64, 5, 5, 6, 6, 6, 5];
        assert_eq!(
            Shard::ByKey(&two).assignments(7, 5),
            vec![0, 1, 0, 2, 3, 4, 1]
        );
    }

    #[test]
    #[should_panic(expected = "shard keys")]
    fn short_key_slices_are_rejected() {
        let keys = [1u64];
        let mut ctx = [(), ()];
        let _ = map_indices_with_workers(&mut ctx, 5, Shard::ByKey(&keys), |_, i| i);
    }

    #[test]
    fn effective_workers_clamps_both_ends() {
        assert_eq!(effective_workers(0, 10), 1);
        assert_eq!(effective_workers(8, 3), 3);
        assert_eq!(effective_workers(4, 0), 1);
        assert_eq!(effective_workers(2, 100), 2);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
