//! DVFS operating points for the IO and memory domains.
//!
//! SysScale scales the *uncore* (IO interconnect, memory controller, DDRIO,
//! DRAM) between a small number of operating points (the paper implements
//! two: LPDDR3 1.6 GHz and 1.06 GHz, Table 1 / Sec. 7.4). An
//! [`UncoreOperatingPoint`] captures the frequencies and relative rail
//! voltages of one such point, and an [`OperatingPointTable`] holds the
//! ordered ladder a governor may move along.

use std::fmt;

use crate::{Freq, SimTime};

/// Identifier of an operating point within an [`OperatingPointTable`].
///
/// Index 0 is the *lowest* performance point; higher indices are higher
/// performance (and power).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct OperatingPointId(pub usize);

impl fmt::Display for OperatingPointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OP{}", self.0)
    }
}

/// One DVFS operating point of the IO and memory domains.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UncoreOperatingPoint {
    /// DRAM (DDR data) frequency for this point, e.g. 1.6 GHz for LPDDR3-1600.
    pub dram_freq: Freq,
    /// IO interconnect clock frequency. Scales with the memory controller
    /// because both share the `V_SA` rail (Sec. 3).
    pub io_interconnect_freq: Freq,
    /// `V_SA` voltage as a fraction of its nominal value (1.0 = nominal).
    pub vsa_scale: f64,
    /// `V_IO` voltage as a fraction of its nominal value (1.0 = nominal).
    pub vio_scale: f64,
    /// Whether the memory-controller/DDRIO/DRAM configuration registers hold
    /// MRC values optimized for `dram_freq`. SysScale reloads optimized values
    /// on every transition; naive multi-frequency operation does not
    /// (Observation 4 / Fig. 4).
    pub mrc_optimized: bool,
}

impl UncoreOperatingPoint {
    /// Creates an operating point with optimized MRC values.
    ///
    /// # Panics
    ///
    /// Panics if a voltage scale is not in `(0, 1.5]` or a frequency is zero.
    #[must_use]
    pub fn new(
        dram_freq: Freq,
        io_interconnect_freq: Freq,
        vsa_scale: f64,
        vio_scale: f64,
    ) -> Self {
        assert!(
            vsa_scale > 0.0 && vsa_scale <= 1.5 && vio_scale > 0.0 && vio_scale <= 1.5,
            "voltage scale out of range"
        );
        assert!(
            !dram_freq.is_zero() && !io_interconnect_freq.is_zero(),
            "operating point frequencies must be non-zero"
        );
        Self {
            dram_freq,
            io_interconnect_freq,
            vsa_scale,
            vio_scale,
            mrc_optimized: true,
        }
    }

    /// Returns a copy of this point with unoptimized MRC register values
    /// (used to reproduce the Fig. 4 ablation).
    #[must_use]
    pub fn with_unoptimized_mrc(mut self) -> Self {
        self.mrc_optimized = false;
        self
    }

    /// Memory-controller frequency; operates at half the DDR data rate
    /// (Sec. 3: "MC ... normally operates at half the DDR frequency").
    #[must_use]
    pub fn memory_controller_freq(&self) -> Freq {
        self.dram_freq / 2.0
    }

    /// DDRIO frequency, equal to the DDR data frequency.
    #[must_use]
    pub fn ddrio_freq(&self) -> Freq {
        self.dram_freq
    }
}

/// The high/low (LPDDR3-1600 / LPDDR3-1066) pair of Table 1, expressed as the
/// two-point ladder implemented on the real Skylake system.
#[must_use]
pub fn skylake_lpddr3_ladder() -> OperatingPointTable {
    OperatingPointTable::new(vec![
        // Low-performance point: DDR 1.06 GHz, IO interconnect 0.4 GHz,
        // V_SA at 0.8x nominal, V_IO at 0.85x nominal (Table 1).
        UncoreOperatingPoint::new(Freq::from_ghz(1.0666), Freq::from_ghz(0.4), 0.80, 0.85),
        // High-performance point: DDR 1.6 GHz, IO interconnect 0.8 GHz,
        // nominal voltages.
        UncoreOperatingPoint::new(Freq::from_ghz(1.6), Freq::from_ghz(0.8), 1.0, 1.0),
    ])
    .expect("static ladder is well formed")
}

/// Error returned when an [`OperatingPointTable`] is malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OperatingPointTableError {
    /// The table contains no points.
    Empty,
    /// Points are not strictly increasing in DRAM frequency.
    NotSorted {
        /// Index of the first offending point.
        index: usize,
    },
}

impl fmt::Display for OperatingPointTableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Empty => write!(f, "operating point table is empty"),
            Self::NotSorted { index } => write!(
                f,
                "operating points must be sorted by increasing DRAM frequency (violated at index {index})"
            ),
        }
    }
}

impl std::error::Error for OperatingPointTableError {}

/// An ordered ladder of uncore operating points, from lowest to highest
/// performance.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatingPointTable {
    points: Vec<UncoreOperatingPoint>,
}

impl OperatingPointTable {
    /// Creates a table from points sorted by increasing DRAM frequency.
    ///
    /// # Errors
    ///
    /// Returns an error if the list is empty or not strictly increasing in
    /// DRAM frequency.
    pub fn new(points: Vec<UncoreOperatingPoint>) -> Result<Self, OperatingPointTableError> {
        if points.is_empty() {
            return Err(OperatingPointTableError::Empty);
        }
        for i in 1..points.len() {
            if points[i].dram_freq <= points[i - 1].dram_freq {
                return Err(OperatingPointTableError::NotSorted { index: i });
            }
        }
        Ok(Self { points })
    }

    /// Number of points in the ladder.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if the ladder holds a single point (DVFS disabled).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The lowest-performance point.
    #[must_use]
    pub fn lowest(&self) -> &UncoreOperatingPoint {
        &self.points[0]
    }

    /// The highest-performance point.
    #[must_use]
    pub fn highest(&self) -> &UncoreOperatingPoint {
        &self.points[self.points.len() - 1]
    }

    /// Identifier of the highest-performance point.
    #[must_use]
    pub fn highest_id(&self) -> OperatingPointId {
        OperatingPointId(self.points.len() - 1)
    }

    /// Identifier of the lowest-performance point.
    #[must_use]
    pub fn lowest_id(&self) -> OperatingPointId {
        OperatingPointId(0)
    }

    /// Returns the point with the given id, if it exists.
    #[must_use]
    pub fn get(&self, id: OperatingPointId) -> Option<&UncoreOperatingPoint> {
        self.points.get(id.0)
    }

    /// Returns the next point up the ladder (towards higher performance),
    /// saturating at the top.
    #[must_use]
    pub fn step_up(&self, id: OperatingPointId) -> OperatingPointId {
        OperatingPointId((id.0 + 1).min(self.points.len() - 1))
    }

    /// Returns the next point down the ladder (towards lower power),
    /// saturating at the bottom.
    #[must_use]
    pub fn step_down(&self, id: OperatingPointId) -> OperatingPointId {
        OperatingPointId(id.0.saturating_sub(1))
    }

    /// Iterates over `(OperatingPointId, &UncoreOperatingPoint)` from lowest
    /// to highest performance.
    pub fn iter(&self) -> impl Iterator<Item = (OperatingPointId, &UncoreOperatingPoint)> {
        self.points
            .iter()
            .enumerate()
            .map(|(i, p)| (OperatingPointId(i), p))
    }
}

/// Latency breakdown of one uncore DVFS transition (Sec. 5, "SysScale
/// Transition Time Overhead").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransitionLatency {
    /// Voltage-regulator ramp time for `V_SA` / `V_IO` (≈2 µs at 50 mV/µs for
    /// a ±100 mV step).
    pub voltage_ramp: SimTime,
    /// Draining the IO interconnect request buffers (<1 µs).
    pub interconnect_drain: SimTime,
    /// DRAM self-refresh exit with fast relock (<5 µs).
    pub self_refresh_exit: SimTime,
    /// Loading optimized MRC values from on-chip SRAM (<1 µs).
    pub mrc_load: SimTime,
    /// PMU firmware execution and other flow overheads (<1 µs).
    pub firmware: SimTime,
}

impl TransitionLatency {
    /// The latency budget of the Skylake implementation (Sec. 5): the total
    /// must stay below 10 µs.
    #[must_use]
    pub fn skylake_default() -> Self {
        Self {
            voltage_ramp: SimTime::from_micros(2.0),
            interconnect_drain: SimTime::from_micros(0.9),
            self_refresh_exit: SimTime::from_micros(4.5),
            mrc_load: SimTime::from_micros(0.9),
            firmware: SimTime::from_micros(0.9),
        }
    }

    /// Total stall time experienced by the IO and memory domains during the
    /// transition. The voltage ramp overlaps with execution when *decreasing*
    /// frequency (voltages drop after the relock), so callers may exclude it;
    /// this method reports the conservative serial sum.
    #[must_use]
    pub fn total(&self) -> SimTime {
        self.voltage_ramp
            + self.interconnect_drain
            + self.self_refresh_exit
            + self.mrc_load
            + self.firmware
    }

    /// Stall contribution when frequencies are being *decreased*: the voltage
    /// reduction happens after execution resumes (Fig. 5, step 7), so it does
    /// not stall the domains.
    #[must_use]
    pub fn stall_on_decrease(&self) -> SimTime {
        self.interconnect_drain + self.self_refresh_exit + self.mrc_load + self.firmware
    }

    /// Stall contribution when frequencies are being *increased*: the voltage
    /// ramp must complete before the PLL relock (Fig. 5, step 2), so it is on
    /// the critical path.
    #[must_use]
    pub fn stall_on_increase(&self) -> SimTime {
        self.total()
    }
}

impl Default for TransitionLatency {
    fn default() -> Self {
        Self::skylake_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(ghz: f64) -> UncoreOperatingPoint {
        UncoreOperatingPoint::new(Freq::from_ghz(ghz), Freq::from_ghz(ghz / 2.0), 1.0, 1.0)
    }

    #[test]
    fn mc_runs_at_half_ddr_frequency() {
        let op = point(1.6);
        assert!((op.memory_controller_freq().as_ghz() - 0.8).abs() < 1e-12);
        assert_eq!(op.ddrio_freq(), op.dram_freq);
    }

    #[test]
    fn skylake_ladder_matches_table1() {
        let ladder = skylake_lpddr3_ladder();
        assert_eq!(ladder.len(), 2);
        let low = ladder.lowest();
        let high = ladder.highest();
        assert!((high.dram_freq.as_ghz() - 1.6).abs() < 1e-9);
        assert!((low.dram_freq.as_ghz() - 1.0666).abs() < 1e-9);
        assert!((low.io_interconnect_freq.as_ghz() - 0.4).abs() < 1e-9);
        assert!((high.io_interconnect_freq.as_ghz() - 0.8).abs() < 1e-9);
        assert!((low.vsa_scale - 0.8).abs() < 1e-12);
        assert!((low.vio_scale - 0.85).abs() < 1e-12);
        assert!(high.mrc_optimized && low.mrc_optimized);
    }

    #[test]
    fn table_rejects_empty_and_unsorted() {
        assert_eq!(
            OperatingPointTable::new(vec![]).unwrap_err(),
            OperatingPointTableError::Empty
        );
        let err = OperatingPointTable::new(vec![point(1.6), point(1.06)]).unwrap_err();
        assert_eq!(err, OperatingPointTableError::NotSorted { index: 1 });
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn step_up_down_saturate() {
        let ladder = OperatingPointTable::new(vec![point(0.8), point(1.06), point(1.6)]).unwrap();
        let lo = ladder.lowest_id();
        let hi = ladder.highest_id();
        assert_eq!(ladder.step_down(lo), lo);
        assert_eq!(ladder.step_up(hi), hi);
        assert_eq!(ladder.step_up(lo), OperatingPointId(1));
        assert_eq!(ladder.step_down(hi), OperatingPointId(1));
        assert_eq!(ladder.iter().count(), 3);
        assert!(ladder.get(OperatingPointId(7)).is_none());
    }

    #[test]
    fn transition_latency_under_10us_budget() {
        let t = TransitionLatency::skylake_default();
        assert!(t.total() <= SimTime::from_micros(10.0));
        assert!(t.stall_on_decrease() < t.stall_on_increase());
    }

    #[test]
    fn unoptimized_mrc_flag() {
        let op = point(1.06).with_unoptimized_mrc();
        assert!(!op.mrc_optimized);
    }

    #[test]
    #[should_panic(expected = "voltage scale out of range")]
    fn rejects_bad_voltage_scale() {
        let _ = UncoreOperatingPoint::new(Freq::from_ghz(1.6), Freq::from_ghz(0.8), 0.0, 1.0);
    }

    #[test]
    fn operating_point_id_display() {
        assert_eq!(OperatingPointId(1).to_string(), "OP1");
    }
}
