//! Error types shared across the simulator crates.

use std::fmt;

use crate::{Bandwidth, Domain, Power};

/// Top-level error type returned by simulator configuration and execution.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A configuration value is invalid or inconsistent.
    InvalidConfig {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A referenced operating point does not exist in the configured ladder.
    UnknownOperatingPoint {
        /// The offending index.
        index: usize,
        /// Number of points in the ladder.
        ladder_len: usize,
    },
    /// An isochronous client (display, ISP) could not be served within its
    /// quality-of-service constraint.
    QosViolation {
        /// Demand that was requested.
        demanded: Bandwidth,
        /// Bandwidth actually provided.
        provided: Bandwidth,
    },
    /// A domain exceeded its allocated power budget beyond tolerance.
    BudgetExceeded {
        /// The offending domain.
        domain: Domain,
        /// The allocated budget.
        budget: Power,
        /// The measured average power.
        measured: Power,
    },
    /// A workload referenced by name does not exist in the suite.
    UnknownWorkload {
        /// The requested name.
        name: String,
    },
    /// The simulation was asked to run for a non-positive duration.
    EmptySimulation,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            SimError::UnknownOperatingPoint { index, ladder_len } => write!(
                f,
                "operating point {index} does not exist (ladder has {ladder_len} points)"
            ),
            SimError::QosViolation { demanded, provided } => write!(
                f,
                "isochronous QoS violation: demanded {demanded}, provided {provided}"
            ),
            SimError::BudgetExceeded {
                domain,
                budget,
                measured,
            } => write!(
                f,
                "{domain} domain exceeded its power budget: {measured} > {budget}"
            ),
            SimError::UnknownWorkload { name } => write!(f, "unknown workload '{name}'"),
            SimError::EmptySimulation => write!(f, "simulation duration must be positive"),
        }
    }
}

impl std::error::Error for SimError {}

/// Convenience result alias used throughout the workspace.
pub type SimResult<T> = Result<T, SimError>;

impl SimError {
    /// Creates an [`SimError::InvalidConfig`] from anything displayable.
    pub fn invalid_config(reason: impl fmt::Display) -> Self {
        SimError::InvalidConfig {
            reason: reason.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let errors = vec![
            SimError::invalid_config("tdp must be positive"),
            SimError::UnknownOperatingPoint {
                index: 3,
                ladder_len: 2,
            },
            SimError::QosViolation {
                demanded: Bandwidth::from_gib_s(4.0),
                provided: Bandwidth::from_gib_s(2.0),
            },
            SimError::BudgetExceeded {
                domain: Domain::Compute,
                budget: Power::from_watts(3.0),
                measured: Power::from_watts(3.6),
            },
            SimError::UnknownWorkload {
                name: "470.lbm".into(),
            },
            SimError::EmptySimulation,
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_trait_object_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
