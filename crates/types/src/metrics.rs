//! Energy-efficiency metrics: energy, average power, and energy-delay product.
//!
//! The paper evaluates SysScale with three metrics (Sec. 7): performance
//! (SPEC score / FPS), average power (battery-life workloads), and EDP as the
//! combined energy-efficiency measure (footnote 2: lower EDP is better).

use crate::{Energy, Power, SimTime};

/// Aggregate run metrics for one simulated execution.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunMetrics {
    /// Wall-clock (simulated) duration of the run.
    pub duration: SimTime,
    /// Total energy consumed by the SoC over the run.
    pub energy: Energy,
    /// Work completed, in abstract work units (instructions for CPU
    /// workloads, frames for graphics workloads, played seconds for
    /// battery-life workloads). Comparisons are only meaningful between runs
    /// of the same workload.
    pub work_done: f64,
}

impl RunMetrics {
    /// Creates run metrics from duration, energy, and completed work.
    #[must_use]
    pub fn new(duration: SimTime, energy: Energy, work_done: f64) -> Self {
        Self {
            duration,
            energy,
            work_done,
        }
    }

    /// Average power over the run. Zero for a zero-length run.
    #[must_use]
    pub fn average_power(&self) -> Power {
        if self.duration.is_zero() {
            Power::ZERO
        } else {
            self.energy / self.duration
        }
    }

    /// Throughput in work units per second. Zero for a zero-length run.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        if self.duration.is_zero() {
            0.0
        } else {
            self.work_done / self.duration.as_secs()
        }
    }

    /// Energy-delay product: `energy × delay`, where delay is the time to
    /// complete one unit of work (the inverse of throughput). Lower is
    /// better. Zero-work runs return infinity.
    #[must_use]
    pub fn edp(&self) -> f64 {
        if self.work_done <= 0.0 {
            return f64::INFINITY;
        }
        let delay_per_work = self.duration.as_secs() / self.work_done;
        self.energy.as_joules() * delay_per_work
    }

    /// Relative speedup of `self` over `baseline`, in percent (positive =
    /// faster). Uses throughput so runs of different durations compare
    /// correctly.
    #[must_use]
    pub fn speedup_pct_over(&self, baseline: &RunMetrics) -> f64 {
        let base = baseline.throughput();
        if base == 0.0 {
            return 0.0;
        }
        (self.throughput() / base - 1.0) * 100.0
    }

    /// Relative average-power reduction of `self` versus `baseline`, in
    /// percent (positive = `self` consumes less power).
    #[must_use]
    pub fn power_reduction_pct_vs(&self, baseline: &RunMetrics) -> f64 {
        let base = baseline.average_power().as_watts();
        if base == 0.0 {
            return 0.0;
        }
        (1.0 - self.average_power().as_watts() / base) * 100.0
    }

    /// Relative energy reduction of `self` versus `baseline`, in percent.
    #[must_use]
    pub fn energy_reduction_pct_vs(&self, baseline: &RunMetrics) -> f64 {
        let base = baseline.energy.as_joules();
        if base == 0.0 {
            return 0.0;
        }
        (1.0 - self.energy.as_joules() / base) * 100.0
    }

    /// Relative EDP improvement of `self` versus `baseline`, in percent
    /// (positive = better energy efficiency).
    #[must_use]
    pub fn edp_improvement_pct_vs(&self, baseline: &RunMetrics) -> f64 {
        let base = baseline.edp();
        if !base.is_finite() || base == 0.0 {
            return 0.0;
        }
        (1.0 - self.edp() / base) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(secs: f64, joules: f64, work: f64) -> RunMetrics {
        RunMetrics::new(SimTime::from_secs(secs), Energy::from_joules(joules), work)
    }

    #[test]
    fn average_power_and_throughput() {
        let m = metrics(2.0, 9.0, 100.0);
        assert!((m.average_power().as_watts() - 4.5).abs() < 1e-12);
        assert!((m.throughput() - 50.0).abs() < 1e-12);
        let empty = RunMetrics::default();
        assert_eq!(empty.average_power(), Power::ZERO);
        assert_eq!(empty.throughput(), 0.0);
    }

    #[test]
    fn edp_lower_is_better_for_faster_same_energy() {
        let slow = metrics(2.0, 9.0, 100.0);
        let fast = metrics(1.0, 9.0, 100.0);
        assert!(fast.edp() < slow.edp());
        assert!(metrics(1.0, 1.0, 0.0).edp().is_infinite());
    }

    #[test]
    fn speedup_and_reductions() {
        let baseline = metrics(2.0, 9.0, 100.0);
        let improved = metrics(2.0, 8.1, 110.0);
        assert!((improved.speedup_pct_over(&baseline) - 10.0).abs() < 1e-9);
        assert!((improved.power_reduction_pct_vs(&baseline) - 10.0).abs() < 1e-9);
        assert!((improved.energy_reduction_pct_vs(&baseline) - 10.0).abs() < 1e-9);
        assert!(improved.edp_improvement_pct_vs(&baseline) > 0.0);
        // Degenerate baselines yield 0, not NaN.
        let zero = RunMetrics::default();
        assert_eq!(improved.speedup_pct_over(&zero), 0.0);
        assert_eq!(improved.power_reduction_pct_vs(&zero), 0.0);
        assert_eq!(improved.energy_reduction_pct_vs(&zero), 0.0);
        assert_eq!(improved.edp_improvement_pct_vs(&zero), 0.0);
    }

    #[test]
    fn edp_improves_proportionally_with_perf_at_fixed_power() {
        // Footnote 9 of the paper: EDP improves proportionally to performance
        // (fixed power) or to average power (fixed performance).
        let baseline = metrics(2.0, 9.0, 100.0);
        let faster = metrics(2.0, 9.0, 110.0);
        // Same energy & duration, 10% more work -> EDP improves.
        assert!(faster.edp() < baseline.edp());
    }
}
