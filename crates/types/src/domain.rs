//! SoC domains, voltage rails, and component identifiers.
//!
//! A modern mobile SoC (Fig. 1 of the paper) has three domains — compute, IO,
//! and memory — and a small number of shared voltage rails. These enums are
//! the vocabulary the rest of the simulator uses to attribute power, assign
//! budgets, and describe DVFS actions.

use std::fmt;

/// One of the three main domains of a mobile SoC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Domain {
    /// CPU cores, graphics engines, and the LLC.
    Compute,
    /// Display controller, ISP engine, IO controllers, and the IO interconnect.
    Io,
    /// Memory controller, DDRIO, and DRAM.
    Memory,
}

impl Domain {
    /// All domains, in the order used for reporting.
    pub const ALL: [Domain; 3] = [Domain::Compute, Domain::Io, Domain::Memory];

    /// Short lowercase name used in reports and CSV headers.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Domain::Compute => "compute",
            Domain::Io => "io",
            Domain::Memory => "memory",
        }
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A voltage rail of the SoC, following the regulator layout of Fig. 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rail {
    /// System-agent rail shared by the memory controller, the IO interconnect,
    /// and the IO engines/controllers (`V_SA`, marker 1 in Fig. 1).
    VSa,
    /// IO rail shared by the DDRIO-digital logic and the IO PHYs (`V_IO`,
    /// marker 4 in Fig. 1).
    VIo,
    /// DRAM device rail, also powering the DDRIO-analog front end (`VDDQ`,
    /// markers 2 and 3 in Fig. 1). Not scaled by DVFS on commercial DRAM.
    Vddq,
    /// Compute rail shared by CPU cores and the LLC.
    VCore,
    /// Compute rail for the graphics engines.
    VGfx,
}

impl Rail {
    /// All rails, in the order used for reporting.
    pub const ALL: [Rail; 5] = [Rail::VSa, Rail::VIo, Rail::Vddq, Rail::VCore, Rail::VGfx];

    /// Short name used in reports (matches the paper's nomenclature).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Rail::VSa => "V_SA",
            Rail::VIo => "V_IO",
            Rail::Vddq => "VDDQ",
            Rail::VCore => "V_CORE",
            Rail::VGfx => "V_GFX",
        }
    }

    /// The domain whose power budget this rail is accounted against.
    ///
    /// `V_SA` powers both IO-domain components and the memory controller; the
    /// paper accounts it with the IO/memory (uncore) side, and we attribute it
    /// to [`Domain::Io`] for budget purposes while the memory-controller share
    /// is reported under [`Domain::Memory`] by the power model itself.
    #[must_use]
    pub fn primary_domain(self) -> Domain {
        match self {
            Rail::VSa => Domain::Io,
            Rail::VIo => Domain::Io,
            Rail::Vddq => Domain::Memory,
            Rail::VCore | Rail::VGfx => Domain::Compute,
        }
    }
}

impl fmt::Display for Rail {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A component of the SoC that consumes power and/or produces memory traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Component {
    /// A CPU core (all cores are aggregated in the slice model).
    CpuCores,
    /// The last-level cache.
    Llc,
    /// The graphics engines.
    GraphicsEngine,
    /// The display controller.
    DisplayController,
    /// The image-signal-processing engine (camera pipeline).
    IspEngine,
    /// Miscellaneous IO controllers (USB, storage, audio, ...).
    IoControllers,
    /// The IO interconnect (primary scalable fabric).
    IoInterconnect,
    /// The memory controller.
    MemoryController,
    /// The digital part of the DRAM interface.
    DdrIoDigital,
    /// The analog part of the DRAM interface.
    DdrIoAnalog,
    /// The DRAM devices themselves.
    Dram,
}

impl Component {
    /// All components, in reporting order.
    pub const ALL: [Component; 11] = [
        Component::CpuCores,
        Component::Llc,
        Component::GraphicsEngine,
        Component::DisplayController,
        Component::IspEngine,
        Component::IoControllers,
        Component::IoInterconnect,
        Component::MemoryController,
        Component::DdrIoDigital,
        Component::DdrIoAnalog,
        Component::Dram,
    ];

    /// Dense index of this component in [`Component::ALL`].
    #[must_use]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// The domain the component belongs to.
    #[must_use]
    pub fn domain(self) -> Domain {
        match self {
            Component::CpuCores | Component::Llc | Component::GraphicsEngine => Domain::Compute,
            Component::DisplayController
            | Component::IspEngine
            | Component::IoControllers
            | Component::IoInterconnect => Domain::Io,
            Component::MemoryController
            | Component::DdrIoDigital
            | Component::DdrIoAnalog
            | Component::Dram => Domain::Memory,
        }
    }

    /// The voltage rail the component draws from (Fig. 1).
    #[must_use]
    pub fn rail(self) -> Rail {
        match self {
            Component::CpuCores | Component::Llc => Rail::VCore,
            Component::GraphicsEngine => Rail::VGfx,
            Component::DisplayController
            | Component::IspEngine
            | Component::IoControllers
            | Component::IoInterconnect
            | Component::MemoryController => Rail::VSa,
            Component::DdrIoDigital => Rail::VIo,
            Component::DdrIoAnalog | Component::Dram => Rail::Vddq,
        }
    }

    /// Short snake_case name used in reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Component::CpuCores => "cpu_cores",
            Component::Llc => "llc",
            Component::GraphicsEngine => "graphics_engine",
            Component::DisplayController => "display_controller",
            Component::IspEngine => "isp_engine",
            Component::IoControllers => "io_controllers",
            Component::IoInterconnect => "io_interconnect",
            Component::MemoryController => "memory_controller",
            Component::DdrIoDigital => "ddrio_digital",
            Component::DdrIoAnalog => "ddrio_analog",
            Component::Dram => "dram",
        }
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A per-domain map, indexed by [`Domain`].
///
/// ```
/// use sysscale_types::{Domain, DomainMap};
/// let mut budgets: DomainMap<f64> = DomainMap::default();
/// budgets[Domain::Compute] = 3.0;
/// assert_eq!(budgets[Domain::Compute], 3.0);
/// assert_eq!(budgets[Domain::Memory], 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DomainMap<T> {
    /// Value for the compute domain.
    pub compute: T,
    /// Value for the IO domain.
    pub io: T,
    /// Value for the memory domain.
    pub memory: T,
}

impl<T> DomainMap<T> {
    /// Creates a map with the given per-domain values.
    pub fn new(compute: T, io: T, memory: T) -> Self {
        Self {
            compute,
            io,
            memory,
        }
    }

    /// Creates a map by evaluating `f` for every domain.
    pub fn from_fn(mut f: impl FnMut(Domain) -> T) -> Self {
        Self {
            compute: f(Domain::Compute),
            io: f(Domain::Io),
            memory: f(Domain::Memory),
        }
    }

    /// Returns an iterator over `(Domain, &T)` pairs in reporting order.
    pub fn iter(&self) -> impl Iterator<Item = (Domain, &T)> {
        [
            (Domain::Compute, &self.compute),
            (Domain::Io, &self.io),
            (Domain::Memory, &self.memory),
        ]
        .into_iter()
    }

    /// Maps every value to a new type.
    pub fn map<U>(&self, mut f: impl FnMut(Domain, &T) -> U) -> DomainMap<U> {
        DomainMap {
            compute: f(Domain::Compute, &self.compute),
            io: f(Domain::Io, &self.io),
            memory: f(Domain::Memory, &self.memory),
        }
    }
}

impl<T> std::ops::Index<Domain> for DomainMap<T> {
    type Output = T;
    fn index(&self, d: Domain) -> &T {
        match d {
            Domain::Compute => &self.compute,
            Domain::Io => &self.io,
            Domain::Memory => &self.memory,
        }
    }
}

impl<T> std::ops::IndexMut<Domain> for DomainMap<T> {
    fn index_mut(&mut self, d: Domain) -> &mut T {
        match d {
            Domain::Compute => &mut self.compute,
            Domain::Io => &mut self.io,
            Domain::Memory => &mut self.memory,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_component_belongs_to_its_rail_domain_consistently() {
        for c in Component::ALL {
            // A component on a compute rail must be in the compute domain.
            match c.rail() {
                Rail::VCore | Rail::VGfx => assert_eq!(c.domain(), Domain::Compute),
                Rail::Vddq => assert_eq!(c.domain(), Domain::Memory),
                // DDRIO-digital is a memory-domain component that draws from the
                // IO rail (paper Sec. 2.1); both uncore domains are legal here.
                Rail::VIo | Rail::VSa => assert!(matches!(c.domain(), Domain::Io | Domain::Memory)),
            }
        }
    }

    #[test]
    fn memory_controller_shares_vsa_with_io_interconnect() {
        // Key structural fact the paper relies on: MC and IO interconnect share V_SA,
        // which is why their frequencies must scale together (Sec. 3).
        assert_eq!(Component::MemoryController.rail(), Rail::VSa);
        assert_eq!(Component::IoInterconnect.rail(), Rail::VSa);
        assert_eq!(Component::IoControllers.rail(), Rail::VSa);
    }

    #[test]
    fn ddrio_split_across_rails() {
        // DDRIO-digital shares V_IO; DDRIO-analog shares VDDQ with DRAM.
        assert_eq!(Component::DdrIoDigital.rail(), Rail::VIo);
        assert_eq!(Component::DdrIoAnalog.rail(), Rail::Vddq);
        assert_eq!(Component::Dram.rail(), Rail::Vddq);
    }

    #[test]
    fn names_are_unique_and_nonempty() {
        let mut names: Vec<&str> = Component::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
        assert!(names.iter().all(|n| !n.is_empty()));
        assert!(Domain::ALL.iter().all(|d| !d.name().is_empty()));
        assert!(Rail::ALL.iter().all(|r| !r.name().is_empty()));
    }

    #[test]
    fn domain_map_indexing_and_iteration() {
        let mut m = DomainMap::new(1, 2, 3);
        assert_eq!(m[Domain::Compute], 1);
        assert_eq!(m[Domain::Io], 2);
        assert_eq!(m[Domain::Memory], 3);
        m[Domain::Io] = 20;
        assert_eq!(m[Domain::Io], 20);
        let collected: Vec<_> = m.iter().map(|(d, v)| (d, *v)).collect();
        assert_eq!(
            collected,
            vec![(Domain::Compute, 1), (Domain::Io, 20), (Domain::Memory, 3)]
        );
        let doubled = m.map(|_, v| v * 2);
        assert_eq!(doubled[Domain::Memory], 6);
    }

    #[test]
    fn domain_map_from_fn() {
        let m = DomainMap::from_fn(|d| d.name().len());
        assert_eq!(m[Domain::Compute], "compute".len());
        assert_eq!(m[Domain::Io], 2);
    }

    #[test]
    fn display_impls() {
        assert_eq!(Domain::Memory.to_string(), "memory");
        assert_eq!(Rail::VSa.to_string(), "V_SA");
        assert_eq!(Component::Dram.to_string(), "dram");
    }
}
