//! Small statistics helpers used by threshold calibration (µ + σ, Sec. 4.2),
//! the predictor-accuracy study (correlation coefficients, Fig. 6), and the
//! violin/summary plots (Fig. 10).

/// Arithmetic mean of a slice. Returns 0.0 for an empty slice.
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population standard deviation of a slice. Returns 0.0 for fewer than two
/// elements.
#[must_use]
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64;
    var.sqrt()
}

/// Pearson correlation coefficient between two equally sized series.
///
/// Returns 0.0 if either series has zero variance or the lengths differ
/// (callers in the figure harness treat that as "no correlation" rather than
/// an error).
#[must_use]
pub fn pearson_correlation(x: &[f64], y: &[f64]) -> f64 {
    if x.len() != y.len() || x.len() < 2 {
        return 0.0;
    }
    let mx = mean(x);
    let my = mean(y);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (a, b) in x.iter().zip(y.iter()) {
        cov += (a - mx) * (b - my);
        vx += (a - mx) * (a - mx);
        vy += (b - my) * (b - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Linear interpolation percentile (inclusive), `p` in `[0, 100]`.
///
/// Returns 0.0 for an empty slice.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]`.
#[must_use]
pub fn percentile(values: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile out of range");
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN values"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Summary statistics of a distribution, as used for the violin plot of
/// Fig. 10 and the per-suite averages of Figs. 7–9.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum value.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// Maximum value.
    pub max: f64,
}

impl Summary {
    /// Computes summary statistics over `values`. Returns the default
    /// (all-zero) summary for an empty slice.
    #[must_use]
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self::default();
        }
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN values"));
        Self {
            count: values.len(),
            mean: mean(values),
            std_dev: std_dev(values),
            min: sorted[0],
            p25: percentile(values, 25.0),
            median: percentile(values, 50.0),
            p75: percentile(values, 75.0),
            max: sorted[sorted.len() - 1],
        }
    }
}

/// The calibration threshold rule of Sec. 4.2: `threshold = µ + σ` of the
/// counter values observed in runs whose degradation stays below the bound.
#[must_use]
pub fn mu_plus_sigma_threshold(values: &[f64]) -> f64 {
    mean(values) + std_dev(values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_dev_basic() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&v) - 5.0).abs() < 1e-12);
        assert!((std_dev(&v) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_perfect_and_inverse() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        let inv = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson_correlation(&x, &y) - 1.0).abs() < 1e-12);
        assert!((pearson_correlation(&x, &inv) + 1.0).abs() < 1e-12);
        assert_eq!(pearson_correlation(&x, &[1.0, 1.0, 1.0, 1.0]), 0.0);
        assert_eq!(pearson_correlation(&x, &y[..3]), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 5.0);
        assert_eq!(percentile(&v, 50.0), 3.0);
        assert!((percentile(&v, 25.0) - 2.0).abs() < 1e-12);
        assert!((percentile(&v, 10.0) - 1.4).abs() < 1e-12);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_rejects_out_of_range() {
        let _ = percentile(&[1.0], 101.0);
    }

    #[test]
    fn summary_of_distribution() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        let s = Summary::of(&v);
        assert_eq!(s.count, 100);
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.median - 50.5).abs() < 1e-12);
        assert!(s.p25 < s.median && s.median < s.p75);
        assert_eq!(Summary::of(&[]), Summary::default());
    }

    #[test]
    fn threshold_rule_is_mu_plus_sigma() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mu_plus_sigma_threshold(&v) - 7.0).abs() < 1e-12);
    }
}
