//! # sysscale-types
//!
//! Shared vocabulary types for the SysScale mobile-SoC simulator: physical
//! units, SoC domains and voltage rails, DVFS operating points, PMU
//! performance counters, run metrics, statistics helpers, error types, and
//! the deterministic scoped worker pool ([`exec`]) the batch runners build
//! on.
//!
//! This crate is dependency-free and is consumed by every
//! other crate in the workspace.
//!
//! ## Example
//!
//! ```
//! use sysscale_types::{Domain, Freq, Power, SimTime};
//!
//! // Table 1 of the paper: the low operating point runs DRAM at 1.06 GHz.
//! let dram = Freq::from_ghz(1.06);
//! assert!(dram < Freq::from_ghz(1.6));
//!
//! // 4.5 W TDP over a 30 ms evaluation interval is a 135 mJ energy budget.
//! let budget = Power::from_watts(4.5) * SimTime::from_millis(30.0);
//! assert!((budget.as_mj() - 135.0).abs() < 1e-9);
//! assert_eq!(Domain::ALL.len(), 3);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod counters;
mod domain;
mod error;
pub mod exec;
mod metrics;
mod operating_point;
pub mod rng;
pub mod stats;
mod units;

pub use counters::{CounterKind, CounterSet, CounterWindow};
pub use domain::{Component, Domain, DomainMap, Rail};
pub use error::{SimError, SimResult};
pub use metrics::RunMetrics;
pub use operating_point::{
    skylake_lpddr3_ladder, OperatingPointId, OperatingPointTable, OperatingPointTableError,
    TransitionLatency, UncoreOperatingPoint,
};
pub use units::{Bandwidth, DataVolume, Energy, Freq, Power, SimTime, Voltage};
