//! Benchmarks the ablation study over SysScale's design choices and prints
//! the resulting table once.

use sysscale::experiments::sensitivity;
use sysscale::DemandPredictor;
use sysscale_bench::timing::{bench, time_matrix};
use sysscale_types::exec;

fn main() {
    let predictor = DemandPredictor::skylake_default();
    // (6 SPEC + video playback) x (baseline + 6 variants) cells.
    let (_, rows) = time_matrix(
        "ablations",
        "full_sweep",
        49,
        exec::default_threads(),
        || sensitivity::ablations(&predictor).unwrap(),
    );
    println!("{}", sysscale_bench::format_ablations(&rows));

    bench("ablations", "full_ablation_sweep", 5, || {
        sensitivity::ablations(&predictor).unwrap()
    });
}
