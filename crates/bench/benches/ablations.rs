//! Benchmarks the ablation study over SysScale's design choices and prints
//! the resulting table once.

use criterion::{criterion_group, criterion_main, Criterion};

use sysscale::experiments::sensitivity;
use sysscale::DemandPredictor;

fn bench_ablations(c: &mut Criterion) {
    let predictor = DemandPredictor::skylake_default();
    let rows = sensitivity::ablations(&predictor).unwrap();
    println!("{}", sysscale_bench::format_ablations(&rows));

    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("full_ablation_sweep", |b| {
        b.iter(|| sensitivity::ablations(&predictor).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
