//! Benchmarks the ablation study over SysScale's design choices and prints
//! the resulting table once.

use sysscale::experiments::sensitivity;
use sysscale::DemandPredictor;
use sysscale_bench::timing::bench;

fn main() {
    let predictor = DemandPredictor::skylake_default();
    let rows = sensitivity::ablations(&predictor).unwrap();
    println!("{}", sysscale_bench::format_ablations(&rows));

    bench("ablations", "full_ablation_sweep", 5, || {
        sensitivity::ablations(&predictor).unwrap()
    });
}
