//! Benchmark of the multi-process distributed sweep executor: the Fig. 10
//! TDP sweep run through `sysscale_dist::run_distributed` (dispatcher +
//! worker OS processes + framed pipe protocol) versus the in-process
//! `SweepSet::run_parallel` reference on the identical recipe — asserting
//! the results are byte-identical before timing anything.
//!
//! Emits one machine-readable `{"kind":"dist_perf",…}` JSON line per mode
//! (`"in_process"`, then `"procs<N>"` per measured process count) and
//! appends them to the `SYSSCALE_BENCH_HISTORY` JSONL file when that
//! variable is set (tagged via `SYSSCALE_BENCH_TAG`).
//!
//! The distributed timings deliberately *include* worker spawn, recipe
//! shipping, and result streaming — the wire overhead is the thing this
//! bench exists to track.
//!
//! ```text
//! cargo bench -p sysscale-bench --bench dist            # full fig10 sweep
//! cargo bench -p sysscale-bench --bench dist -- --short # CI smoke
//! ```
//!
//! The worker binary must exist next to the bench profile's output: run
//! `cargo build --release -p sysscale-dist` first (CI's dist-smoke job
//! does), or point `SYSSCALE_DIST_WORKER` at a built worker.

use std::time::Instant;

use sysscale::{SessionPool, SweepSharding};
use sysscale_bench::timing::DistPerf;
use sysscale_dist::{run_distributed, sweep_from_sets, DistOptions, SweepRecipe};
use sysscale_types::exec;

fn main() {
    let short = std::env::args().any(|a| a == "--short");
    let tdps: &[f64] = if short {
        &[3.5, 15.0]
    } else {
        &[3.5, 4.5, 7.0, 15.0]
    };
    let recipe = SweepRecipe::fig10(tdps);
    assert_eq!(recipe.sharding, SweepSharding::ByPlatform);
    let cells = recipe.total_cells();
    let label = if short { "fig10_smoke" } else { "fig10_full" };

    // In-process reference: same recipe, warm pool, default threads.
    let sets = recipe.build().expect("fig10 recipe builds");
    let sweep = sweep_from_sets(&sets);
    let threads = exec::default_threads();
    let mut pool = SessionPool::new();
    let _ = sweep
        .run_parallel(&mut pool, threads)
        .expect("in-process warm-up");
    let start = Instant::now();
    let reference = sweep
        .run_parallel(&mut pool, threads)
        .expect("in-process sweep");
    let in_process = DistPerf {
        cells,
        procs: 1,
        wall: start.elapsed(),
        result_frames: 0,
        reissued_leases: 0,
        frames_rejected: 0,
        quarantined_cells: 0,
        journal_resumes: 0,
        retries: 0,
    };
    in_process.emit("dist", label, "in_process");

    // Distributed runs: 1 process, plus the resolved default when distinct.
    let default_procs = exec::default_procs();
    let mut proc_counts = vec![1];
    if default_procs > 1 {
        proc_counts.push(default_procs);
    }
    for procs in proc_counts {
        let options = DistOptions {
            procs: Some(procs),
            ..DistOptions::default()
        };
        let start = Instant::now();
        let (run_sets, stats) = run_distributed(&recipe, &options).expect("distributed sweep");
        let wall = start.elapsed();
        assert_eq!(
            run_sets, reference,
            "distributed fig10 at {procs} proc(s) must be byte-identical to in-process"
        );
        assert_eq!(stats.reissued_leases, 0, "healthy run, no worker deaths");
        let perf = DistPerf {
            cells,
            procs,
            wall,
            result_frames: stats.result_frames,
            reissued_leases: stats.reissued_leases,
            frames_rejected: stats.frames_rejected,
            quarantined_cells: stats.quarantined_cells,
            journal_resumes: stats.journal_resumes,
            retries: stats.retries,
        };
        perf.emit("dist", label, &format!("procs{procs}"));
        assert!(perf.cells_per_sec() > 0.0);
        println!(
            "dist/{label}: {:.0} cells/sec over {} process(es) vs {:.0} cells/sec in-process \
             ({} cells, {} result frames)",
            perf.cells_per_sec(),
            procs,
            in_process.cells_per_sec(),
            cells,
            stats.result_frames,
        );
    }
}
