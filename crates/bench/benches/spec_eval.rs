//! Benchmarks the Fig. 7 SPEC evaluation kernel (one workload end-to-end
//! through the scenario API) and prints a reduced figure once.

use sysscale::experiments::evaluation;
use sysscale::{DemandPredictor, Scenario, SimSession, SocConfig};
use sysscale_bench::timing::bench;
use sysscale_workloads::spec_workload;

fn main() {
    let config = SocConfig::skylake_default();
    let predictor = DemandPredictor::skylake_default();

    // Reduced Fig. 7 printout (full version: `figures -- fig7`).
    let fig7 = evaluation::fig7(&config, &predictor).unwrap();
    println!(
        "{}",
        sysscale_bench::format_speedup_figure("Fig. 7 — SPEC CPU2006 (reproduced)", &fig7)
    );

    let mut session = SimSession::new();
    let scenario = |workload: &str, governor: &str| {
        Scenario::builder(spec_workload(workload).unwrap())
            .config(config.clone())
            .governor(governor)
            .build()
            .unwrap()
    };
    let baseline_gamess = scenario("gamess", "baseline");
    let sysscale_gamess = scenario("gamess", "sysscale");
    let sysscale_lbm = scenario("lbm", "sysscale");
    bench("spec_eval", "baseline_run_gamess", 10, || {
        session.run(&baseline_gamess).unwrap()
    });
    bench("spec_eval", "sysscale_run_gamess", 10, || {
        session.run(&sysscale_gamess).unwrap()
    });
    bench("spec_eval", "sysscale_run_lbm", 10, || {
        session.run(&sysscale_lbm).unwrap()
    });
}
