//! Benchmarks the Fig. 7 SPEC evaluation: the full
//! `SPEC06 × {baseline, sysscale, memscale, coscale}` matrix through the
//! sequential and the parallel scenario runner (the headline speedup of the
//! deterministic executor), plus the single-run kernels.
//!
//! Each matrix execution emits one machine-readable JSON line
//! (`"kind":"matrix_perf"`) carrying wall-clock, cells/sec, and thread
//! count, so the perf trajectory is trackable across PRs.

use sysscale::experiments::evaluation::{self, EVALUATION_GOVERNORS};
use sysscale::{
    DemandPredictor, GovernorRegistry, Scenario, ScenarioSet, SessionPool, SimSession, SocConfig,
};
use sysscale_bench::timing::{bench, time_matrix};
use sysscale_workloads::{spec_cpu2006_suite, spec_workload};

fn main() {
    let config = SocConfig::skylake_default();
    let predictor = DemandPredictor::skylake_default();

    // Reduced Fig. 7 printout (full version: `figures -- fig7`).
    let fig7 = evaluation::fig7(&config, &predictor).unwrap();
    println!(
        "{}",
        sysscale_bench::format_speedup_figure("Fig. 7 — SPEC CPU2006 (reproduced)", &fig7)
    );

    // ---- The executor benchmark: sequential vs 4 workers on the full
    // SPEC06 × 4-governor matrix. ----
    let suite = spec_cpu2006_suite();
    let mut registry = GovernorRegistry::builtin();
    registry.register(sysscale::sysscale_factory(predictor));
    let matrix = ScenarioSet::matrix_with(&registry, &config, &suite, &EVALUATION_GOVERNORS)
        .unwrap()
        .with_baseline("baseline");
    let cells = matrix.len();

    let (seq_perf, sequential) = time_matrix("spec_eval", "spec06x4_seq", cells, 1, || {
        matrix.run(&mut SimSession::new()).unwrap()
    });
    let (par_perf, parallel) = time_matrix("spec_eval", "spec06x4_par4", cells, 4, || {
        matrix.run_parallel(&mut SessionPool::new(), 4).unwrap()
    });
    assert_eq!(
        sequential, parallel,
        "parallel RunSet must be bit-identical to the sequential one"
    );
    println!(
        "spec_eval/matrix_speedup_4_threads: {:.2}x ({} cells, {:.1} -> {:.1} cells/sec)",
        seq_perf.wall.as_secs_f64() / par_perf.wall.as_secs_f64().max(1e-12),
        cells,
        seq_perf.cells_per_sec(),
        par_perf.cells_per_sec(),
    );

    // ---- Single-run kernels. ----
    let mut session = SimSession::new();
    let scenario = |workload: &str, governor: &str| {
        Scenario::builder(spec_workload(workload).unwrap())
            .config(config.clone())
            .governor(governor)
            .build()
            .unwrap()
    };
    let baseline_gamess = scenario("gamess", "baseline");
    let sysscale_gamess = scenario("gamess", "sysscale");
    let sysscale_lbm = scenario("lbm", "sysscale");
    bench("spec_eval", "baseline_run_gamess", 10, || {
        session.run(&baseline_gamess).unwrap()
    });
    bench("spec_eval", "sysscale_run_gamess", 10, || {
        session.run(&sysscale_gamess).unwrap()
    });
    bench("spec_eval", "sysscale_run_lbm", 10, || {
        session.run(&sysscale_lbm).unwrap()
    });
}
