//! Benchmarks the Fig. 7 SPEC evaluation kernel (one workload end-to-end) and
//! prints a reduced figure once.

use criterion::{criterion_group, criterion_main, Criterion};

use sysscale::experiments::{evaluation, run_workload};
use sysscale::{DemandPredictor, FixedGovernor, SocConfig, SysScaleGovernor};
use sysscale_workloads::spec_workload;

fn bench_spec_eval(c: &mut Criterion) {
    let config = SocConfig::skylake_default();
    let predictor = DemandPredictor::skylake_default();

    // Reduced Fig. 7 printout (full version: `figures -- fig7`).
    let fig7 = evaluation::fig7(&config, &predictor).unwrap();
    println!(
        "{}",
        sysscale_bench::format_speedup_figure("Fig. 7 — SPEC CPU2006 (reproduced)", &fig7)
    );

    let gamess = spec_workload("gamess").unwrap();
    let lbm = spec_workload("lbm").unwrap();
    let mut group = c.benchmark_group("spec_eval");
    group.sample_size(10);
    group.bench_function("baseline_run_gamess", |b| {
        b.iter(|| run_workload(&config, &gamess, &mut FixedGovernor::baseline()).unwrap())
    });
    group.bench_function("sysscale_run_gamess", |b| {
        b.iter(|| {
            run_workload(
                &config,
                &gamess,
                &mut SysScaleGovernor::with_default_thresholds(),
            )
            .unwrap()
        })
    });
    group.bench_function("sysscale_run_lbm", |b| {
        b.iter(|| {
            run_workload(&config, &lbm, &mut SysScaleGovernor::with_default_thresholds()).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_spec_eval);
criterion_main!(benches);
