//! Benchmark of the fold-based streaming result pipeline: the Fig. 10 TDP
//! sweep aggregated through `SweepSet::run_parallel_fold`
//! (`sensitivity::fig10_fold_in`) versus the materialized-`RunSet` path
//! (`sensitivity::fig10_in`), measuring both throughput (cells/sec) and —
//! via a live-bytes tracking global allocator — the peak result memory each
//! path holds.
//!
//! Emits one machine-readable `{"kind":"fold_perf",…}` JSON line per mode
//! (`"fold"` and `"materialized"`) next to the other benches' records, and
//! appends them to the `SYSSCALE_BENCH_HISTORY` JSONL file when that
//! variable is set (tagged via `SYSSCALE_BENCH_TAG`).
//!
//! ```text
//! cargo bench -p sysscale-bench --bench fold            # full fig10 sweep
//! cargo bench -p sysscale-bench --bench fold -- --short # CI smoke
//! ```

use std::time::Instant;

use sysscale::experiments::sensitivity;
use sysscale::{DemandPredictor, SessionPool};
use sysscale_alloctrack::{peak_growth_during, TrackingAllocator};
use sysscale_bench::timing::FoldPerf;
use sysscale_types::exec;
use sysscale_workloads::spec_cpu2006_suite;

#[global_allocator]
static ALLOCATOR: TrackingAllocator = TrackingAllocator;

/// Peak heap growth (bytes above entry level) and wall clock while `f` runs.
fn measure<R>(f: impl FnOnce() -> R) -> (u64, std::time::Duration, R) {
    let start = Instant::now();
    let (peak, result) = peak_growth_during(f);
    (peak, start.elapsed(), result)
}

fn main() {
    let short = std::env::args().any(|a| a == "--short");
    let predictor = DemandPredictor::skylake_default();

    let tdps: &[f64] = if short {
        &[3.5, 15.0]
    } else {
        &[3.5, 4.5, 7.0, 15.0]
    };
    let cells = spec_cpu2006_suite().len() * 2 * tdps.len();
    let threads = exec::default_threads();
    let label = if short { "fig10_smoke" } else { "fig10_full" };

    // Warm pools keep one-time simulator construction out of both
    // measurements, so peak bytes reflect result handling.
    let mut fold_pool = SessionPool::new();
    let _ = sensitivity::fig10_fold_in(&mut fold_pool, threads, &predictor, tdps)
        .expect("fig10 fold warm-up");
    let (fold_peak, fold_wall, fold_points) = measure(|| {
        sensitivity::fig10_fold_in(&mut fold_pool, threads, &predictor, tdps)
            .expect("fig10 fold executes")
    });

    let mut mat_pool = SessionPool::new();
    let _ = sensitivity::fig10_in(&mut mat_pool, threads, &predictor, tdps)
        .expect("fig10 materialized warm-up");
    let (mat_peak, mat_wall, mat_points) = measure(|| {
        sensitivity::fig10_in(&mut mat_pool, threads, &predictor, tdps)
            .expect("fig10 materialized executes")
    });

    assert_eq!(
        fold_points, mat_points,
        "fold output must be byte-identical to the materialized path"
    );

    let effective = exec::effective_workers(threads, cells);
    let fold_perf = FoldPerf {
        cells,
        threads: effective,
        wall: fold_wall,
        peak_result_bytes: fold_peak,
    };
    fold_perf.emit("fold", label, "fold");
    let mat_perf = FoldPerf {
        cells,
        threads: effective,
        wall: mat_wall,
        peak_result_bytes: mat_peak,
    };
    mat_perf.emit("fold", label, "materialized");

    assert!(fold_perf.cells_per_sec() > 0.0);
    assert!(mat_perf.cells_per_sec() > 0.0);

    println!(
        "fold/{label}: {:.0} cells/sec at {} B peak (fold) vs {:.0} cells/sec at {} B peak \
         (materialized), {} cells, {} workers",
        fold_perf.cells_per_sec(),
        fold_perf.peak_result_bytes,
        mat_perf.cells_per_sec(),
        mat_perf.peak_result_bytes,
        cells,
        effective,
    );
}
