//! Microbenchmark of the simulator's per-slice hot path.
//!
//! Runs the SPEC06 × {baseline, sysscale, memscale, coscale} evaluation
//! matrix and reports *slices per second* plus the average memory
//! fixed-point iterations each slice paid — the two quantities the
//! slice-loop optimisations move. Each measurement emits one
//! machine-readable `{"kind":"slice_perf",…}` JSON line next to the
//! existing `matrix_perf` lines, and appends both to the
//! `SYSSCALE_BENCH_HISTORY` JSONL file when that variable is set (tagged
//! via `SYSSCALE_BENCH_TAG`), so cells/sec and slices/sec regressions are
//! visible in review.
//!
//! ```text
//! cargo bench -p sysscale-bench --bench slice_loop            # full matrix
//! cargo bench -p sysscale-bench --bench slice_loop -- --short # CI smoke
//! ```

use std::time::Instant;

use sysscale::experiments::evaluation::EVALUATION_GOVERNORS;
use sysscale::{DemandPredictor, GovernorRegistry, RunSet, ScenarioSet, SessionPool, SocConfig};
use sysscale_bench::timing::SlicePerf;
use sysscale_types::exec;
use sysscale_workloads::{spec_cpu2006_suite, Workload};

/// Executes `matrix` on a fresh pool at `threads` workers and emits the
/// slice-perf record for the run.
fn measure(label: &str, matrix: &ScenarioSet, threads: usize) -> (SlicePerf, RunSet) {
    let mut pool = SessionPool::new();
    let start = Instant::now();
    let runs = matrix
        .run_parallel(&mut pool, threads)
        .expect("matrix executes");
    let wall = start.elapsed();

    let (slices, fixed_point_iters) = runs.records().iter().fold((0u64, 0u64), |(s, i), r| {
        (
            s + r.report.loop_stats.slices,
            i + r.report.loop_stats.fixed_point_iters,
        )
    });
    let perf = SlicePerf {
        cells: matrix.len(),
        threads: exec::effective_workers(threads, matrix.len()),
        slices,
        fixed_point_iters,
        wall,
    };
    perf.emit("slice_loop", label);
    (perf, runs)
}

fn main() {
    let short = std::env::args().any(|a| a == "--short");
    let config = SocConfig::skylake_default();

    let suite: Vec<Workload> = if short {
        spec_cpu2006_suite().into_iter().take(6).collect()
    } else {
        spec_cpu2006_suite()
    };
    let governors: &[&str] = if short {
        &["baseline", "sysscale"]
    } else {
        &EVALUATION_GOVERNORS
    };

    let mut registry = GovernorRegistry::builtin();
    registry.register(sysscale::sysscale_factory(
        DemandPredictor::skylake_default(),
    ));
    let matrix = ScenarioSet::matrix_with(&registry, &config, &suite, governors)
        .expect("evaluation matrix builds")
        .with_baseline("baseline");

    let label = if short { "spec_smoke" } else { "spec06x4" };
    let (seq, sequential) = measure(&format!("{label}_seq"), &matrix, 1);
    let threads = exec::default_threads().max(2);
    let (par, parallel) = measure(&format!("{label}_par{threads}"), &matrix, threads);

    assert_eq!(
        sequential, parallel,
        "parallel RunSet must be bit-identical to the sequential one"
    );
    assert!(seq.slices > 0, "matrix must simulate slices");
    assert_eq!(seq.slices, par.slices, "slice count is deterministic");
    assert!(
        seq.iters_per_slice() >= 1.0 && seq.iters_per_slice() <= 4.0,
        "fixed point runs 1..=4 iterations per slice, got {}",
        seq.iters_per_slice()
    );

    println!(
        "slice_loop/{label}: {:.0} slices/sec seq, {:.0} slices/sec par{threads}, \
         {:.2} fixed-point iters/slice",
        seq.slices_per_sec(),
        par.slices_per_sec(),
        seq.iters_per_slice(),
    );
}
