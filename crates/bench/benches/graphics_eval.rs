//! Benchmarks the Fig. 8 graphics evaluation and prints the figure once.

use criterion::{criterion_group, criterion_main, Criterion};

use sysscale::experiments::{evaluation, run_workload};
use sysscale::{DemandPredictor, SocConfig, SysScaleGovernor};
use sysscale_workloads::graphics_workload;

fn bench_graphics_eval(c: &mut Criterion) {
    let config = SocConfig::skylake_default();
    let predictor = DemandPredictor::skylake_default();

    let fig8 = evaluation::fig8(&config, &predictor).unwrap();
    println!(
        "{}",
        sysscale_bench::format_speedup_figure("Fig. 8 — graphics (reproduced)", &fig8)
    );

    let mark06 = graphics_workload("3DMark06").unwrap();
    let mut group = c.benchmark_group("graphics_eval");
    group.sample_size(10);
    group.bench_function("sysscale_run_3dmark06", |b| {
        b.iter(|| {
            run_workload(
                &config,
                &mark06,
                &mut SysScaleGovernor::with_default_thresholds(),
            )
            .unwrap()
        })
    });
    group.bench_function("fig8_full", |b| {
        b.iter(|| evaluation::fig8(&config, &predictor).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_graphics_eval);
criterion_main!(benches);
