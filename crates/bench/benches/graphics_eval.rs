//! Benchmarks the Fig. 8 graphics evaluation and prints the figure once.

use sysscale::experiments::evaluation;
use sysscale::{DemandPredictor, Scenario, SimSession, SocConfig};
use sysscale_bench::timing::{bench, time_matrix};
use sysscale_types::exec;
use sysscale_workloads::{graphics_suite, graphics_workload};

fn main() {
    let config = SocConfig::skylake_default();
    let predictor = DemandPredictor::skylake_default();

    // fig8 runs the graphics suite x 4 governors as one matrix.
    let cells = graphics_suite().len() * 4;
    let (_, fig8) = time_matrix(
        "graphics_eval",
        "fig8",
        cells,
        exec::default_threads(),
        || evaluation::fig8(&config, &predictor).unwrap(),
    );
    println!(
        "{}",
        sysscale_bench::format_speedup_figure("Fig. 8 — graphics (reproduced)", &fig8)
    );

    let mut session = SimSession::new();
    let mark06 = Scenario::builder(graphics_workload("3DMark06").unwrap())
        .config(config.clone())
        .governor("sysscale")
        .build()
        .unwrap();
    bench("graphics_eval", "sysscale_run_3dmark06", 10, || {
        session.run(&mark06).unwrap()
    });
    bench("graphics_eval", "fig8_full", 10, || {
        evaluation::fig8(&config, &predictor).unwrap()
    });
}
