//! Benchmarks the Fig. 8 graphics evaluation and prints the figure once.

use sysscale::experiments::evaluation;
use sysscale::{DemandPredictor, Scenario, SimSession, SocConfig};
use sysscale_bench::timing::bench;
use sysscale_workloads::graphics_workload;

fn main() {
    let config = SocConfig::skylake_default();
    let predictor = DemandPredictor::skylake_default();

    let fig8 = evaluation::fig8(&config, &predictor).unwrap();
    println!(
        "{}",
        sysscale_bench::format_speedup_figure("Fig. 8 — graphics (reproduced)", &fig8)
    );

    let mut session = SimSession::new();
    let mark06 = Scenario::builder(graphics_workload("3DMark06").unwrap())
        .config(config.clone())
        .governor("sysscale")
        .build()
        .unwrap();
    bench("graphics_eval", "sysscale_run_3dmark06", 10, || {
        session.run(&mark06).unwrap()
    });
    bench("graphics_eval", "fig8_full", 10, || {
        evaluation::fig8(&config, &predictor).unwrap()
    });
}
