//! Benchmarks the Fig. 6 predictor study: calibration, fitting, and the
//! per-interval prediction kernel.

use sysscale::experiments::predictor_study::{fig6, PredictorStudyConfig};
use sysscale::{calibrate, CalibrationConfig, DemandPredictor, SocConfig};
use sysscale_bench::timing::{bench, time_matrix};
use sysscale_types::{Bandwidth, CounterKind, CounterSet};
use sysscale_workloads::WorkloadGenerator;

fn main() {
    let config = SocConfig::skylake_default();

    // Reduced Fig. 6 printout (full version: `figures -- fig6`).
    let study = PredictorStudyConfig {
        workloads_per_panel: 24,
        ..PredictorStudyConfig::default()
    };
    // 3 pairs x 3 classes x 24 workloads x 2 operating points.
    let cells = 3 * 3 * study.workloads_per_panel * 2;
    let (_, panels) = time_matrix(
        "predictor",
        "fig6_reduced",
        cells,
        sysscale_types::exec::default_threads(),
        || fig6(&config, &study).unwrap(),
    );
    println!("{}", sysscale_bench::format_fig6(&panels));

    let predictor = DemandPredictor::skylake_default();
    let mut counters = CounterSet::new();
    counters.set(CounterKind::LlcStalls, 4.2e5);
    counters.set(CounterKind::LlcOccupancyTracer, 2.1);
    counters.set(CounterKind::GfxLlcMisses, 1.5e4);
    counters.set(CounterKind::IoRpq, 3.0);
    bench("predictor", "predict_one_interval", 1000, || {
        predictor.predict(
            &counters,
            Bandwidth::from_gib_s(4.3),
            Bandwidth::from_gib_s(23.8),
        )
    });

    let population = WorkloadGenerator::with_seed(5).population(10);
    let cal = CalibrationConfig {
        degradation_bound: 0.01,
        sim_duration: sysscale_types::SimTime::from_millis(60.0),
    };
    bench("predictor", "calibrate_10_workloads", 10, || {
        calibrate(&config, &population, &cal).unwrap()
    });
}
