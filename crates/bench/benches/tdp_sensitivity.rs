//! Benchmarks the Fig. 10 TDP sensitivity study and prints the summaries once.

use criterion::{criterion_group, criterion_main, Criterion};

use sysscale::experiments::sensitivity;
use sysscale::DemandPredictor;

fn bench_tdp_sensitivity(c: &mut Criterion) {
    let predictor = DemandPredictor::skylake_default();

    let points = sensitivity::fig10(&predictor, &[3.5, 4.5, 7.0, 15.0]).unwrap();
    println!("{}", sysscale_bench::format_fig10(&points));

    let mut group = c.benchmark_group("tdp_sensitivity");
    group.sample_size(10);
    group.bench_function("fig10_single_tdp_4_5w", |b| {
        b.iter(|| sensitivity::fig10(&predictor, &[4.5]).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_tdp_sensitivity);
criterion_main!(benches);
