//! Benchmarks the Fig. 10 TDP sensitivity study and prints the summaries once.

use sysscale::experiments::sensitivity;
use sysscale::DemandPredictor;
use sysscale_bench::timing::{bench, time_matrix};
use sysscale_types::exec;
use sysscale_workloads::spec_cpu2006_suite;

fn main() {
    let predictor = DemandPredictor::skylake_default();

    // Each TDP point is one SPEC suite x {baseline, sysscale} matrix.
    let cells_per_tdp = spec_cpu2006_suite().len() * 2;
    let (_, points) = time_matrix(
        "tdp_sensitivity",
        "fig10_4_tdps",
        cells_per_tdp * 4,
        exec::default_threads(),
        || sensitivity::fig10(&predictor, &[3.5, 4.5, 7.0, 15.0]).unwrap(),
    );
    println!("{}", sysscale_bench::format_fig10(&points));

    bench("tdp_sensitivity", "fig10_single_tdp_4_5w", 5, || {
        sensitivity::fig10(&predictor, &[4.5]).unwrap()
    });
}
