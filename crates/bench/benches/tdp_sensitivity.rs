//! Benchmarks the Fig. 10 TDP sensitivity study and prints the summaries once.

use sysscale::experiments::sensitivity;
use sysscale::DemandPredictor;
use sysscale_bench::timing::bench;

fn main() {
    let predictor = DemandPredictor::skylake_default();

    let points = sensitivity::fig10(&predictor, &[3.5, 4.5, 7.0, 15.0]).unwrap();
    println!("{}", sysscale_bench::format_fig10(&points));

    bench("tdp_sensitivity", "fig10_single_tdp_4_5w", 5, || {
        sensitivity::fig10(&predictor, &[4.5]).unwrap()
    });
}
