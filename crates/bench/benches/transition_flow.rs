//! Benchmarks the Fig. 5 DVFS transition flow and the per-slice simulator
//! kernel, and prints the Sec. 5 overhead accounting once.

use sysscale::experiments::sensitivity;
use sysscale::{Scenario, SimSession, SocConfig};
use sysscale_bench::timing::bench;
use sysscale_soc::TransitionFlow;
use sysscale_types::{skylake_lpddr3_ladder, SimTime, TransitionLatency};
use sysscale_workloads::spec_workload;

fn main() {
    println!(
        "{}",
        sysscale_bench::format_overheads(&sensitivity::overheads())
    );

    let ladder = skylake_lpddr3_ladder();
    bench(
        "transition_flow",
        "fig5_down_up_transition_pair",
        100,
        || {
            let mut dram = sysscale_dram::DramChip::skylake_lpddr3();
            let mut fabric = sysscale_interconnect::IoInterconnect::skylake_default();
            let mut flow = TransitionFlow::new(TransitionLatency::skylake_default(), true);
            flow.execute(ladder.lowest(), &mut dram, &mut fabric)
                .unwrap();
            flow.execute(ladder.highest(), &mut dram, &mut fabric)
                .unwrap();
            flow.stats().total_stall
        },
    );

    let mut session = SimSession::new();
    let scenario = Scenario::builder(spec_workload("astar").unwrap())
        .config(SocConfig::skylake_default())
        .duration(SimTime::from_millis(100.0))
        .build()
        .unwrap();
    bench("transition_flow", "simulate_100ms_slice_loop", 20, || {
        session.run(&scenario).unwrap()
    });
}
