//! Benchmarks the Fig. 5 DVFS transition flow and the per-slice simulator
//! kernel, and prints the Sec. 5 overhead accounting once.

use criterion::{criterion_group, criterion_main, Criterion};

use sysscale::experiments::sensitivity;
use sysscale::{FixedGovernor, SocConfig, SocSimulator};
use sysscale_soc::TransitionFlow;
use sysscale_types::{skylake_lpddr3_ladder, SimTime, TransitionLatency};
use sysscale_workloads::spec_workload;

fn bench_transition_flow(c: &mut Criterion) {
    println!(
        "{}",
        sysscale_bench::format_overheads(&sensitivity::overheads())
    );

    let mut group = c.benchmark_group("transition_flow");
    group.sample_size(20);

    let ladder = skylake_lpddr3_ladder();
    group.bench_function("fig5_down_up_transition_pair", |b| {
        b.iter(|| {
            let mut dram = sysscale_dram_chip();
            let mut fabric = sysscale_interconnect_fabric();
            let mut flow = TransitionFlow::new(TransitionLatency::skylake_default(), true);
            flow.execute(ladder.lowest(), &mut dram, &mut fabric).unwrap();
            flow.execute(ladder.highest(), &mut dram, &mut fabric).unwrap();
            flow.stats().total_stall
        })
    });

    let config = SocConfig::skylake_default();
    let workload = spec_workload("astar").unwrap();
    group.bench_function("simulate_100ms_slice_loop", |b| {
        b.iter(|| {
            let mut sim = SocSimulator::new(config.clone()).unwrap();
            sim.run(
                &workload,
                &mut FixedGovernor::baseline(),
                SimTime::from_millis(100.0),
            )
            .unwrap()
        })
    });
    group.finish();
}

fn sysscale_dram_chip() -> sysscale_dram::DramChip {
    sysscale_dram::DramChip::skylake_lpddr3()
}

fn sysscale_interconnect_fabric() -> sysscale_interconnect::IoInterconnect {
    sysscale_interconnect::IoInterconnect::skylake_default()
}

criterion_group!(benches, bench_transition_flow);
criterion_main!(benches);
