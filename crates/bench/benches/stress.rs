//! Stress benchmark of the sweep service (`sysscale_dist::serve`): a
//! rising-load schedule against one long-running `SweepService`, the way
//! llamaburn stress-tests an inference server.
//!
//! Each stage doubles the concurrent client count; every client submits a
//! burst of identical small sweeps over an in-memory connection and
//! collects its results. Because one executor thread owns the shared warm
//! pool, rising admission concurrency deepens the queue — the measured
//! queue-depth vs throughput curve — while per-sweep results stay
//! byte-identical to the in-process fold (asserted before anything is
//! timed). After all stages run, the degradation point of the schedule is
//! detected (`sysscale_dist::degradation_point`) and one
//! `{"kind":"stress_perf",…}` JSON record per stage is emitted and
//! appended to the `SYSSCALE_BENCH_HISTORY` JSONL file when that variable
//! is set (tagged via `SYSSCALE_BENCH_TAG`).
//!
//! ```text
//! cargo bench -p sysscale-bench --bench stress            # full schedule
//! cargo bench -p sysscale-bench --bench stress -- --short # CI smoke
//! ```

use sysscale::{CollectRuns, RunRecord, SessionPool};
use sysscale_bench::timing::StressPerf;
use sysscale_dist::{
    degradation_point, sweep_from_sets, GovernorSpec, MatrixRecipe, PlatformSpec, ServeOptions,
    StressMetrics, SweepRecipe, SweepService, WorkloadsSpec,
};
use sysscale_types::exec;

/// The unit of load: a compact 4-cell sweep (2 workloads × 2 governors),
/// small enough that a stage is dominated by serving, not simulating.
fn unit_recipe() -> SweepRecipe {
    SweepRecipe::single(MatrixRecipe {
        platform: PlatformSpec::SkylakeM6y75 { tdp_w: 4.5 },
        workloads: WorkloadsSpec::SpecNamed(["gamess", "lbm"].map(str::to_string).to_vec()),
        governors: vec![
            GovernorSpec::Registry("baseline".to_string()),
            GovernorSpec::SysScaleDefault,
        ],
        baseline: Some("baseline".to_string()),
        duration_secs: Some(0.25),
        pinned_fingerprint: None,
    })
}

/// The in-process reference stream the served results must match.
fn in_process(recipe: &SweepRecipe) -> Vec<(usize, RunRecord)> {
    let sets = recipe.build().expect("buildable recipe");
    let sweep = sweep_from_sets(&sets);
    let mut pool = SessionPool::new();
    let acc = sweep
        .run_parallel_fold_sharded(&mut pool, 3, recipe.sharding, &CollectRuns)
        .expect("in-process sweep");
    CollectRuns::into_flat_records(acc)
}

/// Runs one stage: `clients` concurrent connections, each submitting
/// `burst` sweeps up front and collecting them all. Returns the stage's
/// metrics plus the raw counters the perf record carries.
fn run_stage(
    recipe: &SweepRecipe,
    expected: &[(usize, RunRecord)],
    clients: usize,
    burst: usize,
    workers: usize,
) -> (StressMetrics, u64, u64) {
    let service = SweepService::start(&ServeOptions { workers });
    std::thread::scope(|scope| {
        for _ in 0..clients {
            let mut client = service.connect();
            scope.spawn(move || {
                let ids: Vec<u64> = (0..burst)
                    .map(|_| client.submit(recipe, 0).expect("submit"))
                    .collect();
                let outcomes = client.collect(&ids).expect("collect");
                for id in &ids {
                    let outcome = &outcomes[id];
                    assert!(outcome.error.is_none(), "healthy sweep failed");
                    assert_eq!(
                        outcome.records, expected,
                        "served records must be byte-identical to the in-process fold"
                    );
                }
                client.close();
            });
        }
    });
    let stats = service.shutdown();
    assert_eq!(stats.submissions, (clients * burst) as u64);
    assert_eq!(stats.errors, 0, "healthy schedule must not error");
    assert_eq!(stats.frames_rejected, 0, "healthy schedule rejects nothing");
    (
        stats.metrics(),
        stats.max_queue_depth,
        stats.frames_rejected,
    )
}

fn main() {
    let short = std::env::args().any(|a| a == "--short");
    let (client_stages, burst): (&[usize], usize) = if short {
        (&[1, 4], 2)
    } else {
        (&[1, 2, 4, 8], 3)
    };
    let label = if short {
        "serve_smoke"
    } else {
        "serve_rising_load"
    };
    let workers = exec::default_threads();
    let recipe = unit_recipe();
    let expected = in_process(&recipe);

    let stages: Vec<(StressMetrics, u64, u64, usize)> = client_stages
        .iter()
        .map(|&clients| {
            let (metrics, max_queue_depth, frames_rejected) =
                run_stage(&recipe, &expected, clients, burst, workers);
            println!(
                "stress/{label}: {clients} client(s) -> {:.1} req/s, p95 {:.1} ms, \
                 queue depth {max_queue_depth}",
                metrics.requests_per_sec, metrics.p95_latency_ms,
            );
            (metrics, max_queue_depth, frames_rejected, clients)
        })
        .collect();

    let metrics_only: Vec<StressMetrics> = stages.iter().map(|s| s.0).collect();
    let degradation_stage =
        degradation_point(&metrics_only).map_or(-1, |stage| i64::try_from(stage).unwrap_or(-1));

    for (stage, (metrics, max_queue_depth, frames_rejected, clients)) in stages.iter().enumerate() {
        let perf = StressPerf {
            stage,
            clients: *clients,
            workers,
            requests: metrics.requests,
            errors: metrics.errors,
            cells: (metrics.requests) * recipe.total_cells() as u64,
            requests_per_sec: metrics.requests_per_sec,
            cells_per_sec: metrics.cells_per_sec,
            p50_latency_ms: metrics.p50_latency_ms,
            p95_latency_ms: metrics.p95_latency_ms,
            p99_latency_ms: metrics.p99_latency_ms,
            p999_latency_ms: metrics.p999_latency_ms,
            queue_share: metrics.queue_share,
            error_rate: metrics.error_rate,
            max_queue_depth: *max_queue_depth,
            frames_rejected: *frames_rejected,
            degradation_stage,
        };
        perf.emit("stress", label);
        assert!(perf.requests_per_sec > 0.0);
        assert!(perf.p50_latency_ms <= perf.p95_latency_ms);
        assert!(perf.p95_latency_ms <= perf.p99_latency_ms);
        assert!(perf.p99_latency_ms <= perf.p999_latency_ms);
    }
    match degradation_stage {
        -1 => println!("stress/{label}: no degradation point across the schedule"),
        stage => println!("stress/{label}: degradation point at stage {stage}"),
    }
}
