//! Stress benchmark of the sweep service (`sysscale_dist::serve`): a
//! fall-then-rise load schedule against one long-running `SweepService`,
//! the way llamaburn stress-tests an inference server, plus a mixed-load
//! schedule measuring what the shared cost-aware scheduler buys.
//!
//! **Staged schedule** — each stage sets a concurrent client count; every
//! client submits a burst of identical small sweeps over an in-memory
//! connection and collects its results. The client count rises and then
//! falls back, so both the degradation point and the recovery point of
//! the schedule are exercised (`sysscale_dist::assess_stages`); one
//! `{"kind":"stress_perf",…}` record per stage is emitted. Per-sweep
//! results stay byte-identical to the in-process fold (asserted before
//! anything is timed).
//!
//! **Mixed-load schedule** — one big population sweep is submitted, then a
//! stream of small sweeps rides alongside it; measured once under the
//! serial executor and once under the shared scheduler. The small-sweep
//! p95 is the number the shared scheduler exists to improve (a small
//! sweep no longer waits out the big one), emitted as one
//! `{"kind":"mixed_perf",…}` record per mode.
//!
//! Records append to the `SYSSCALE_BENCH_HISTORY` JSONL file when that
//! variable is set (tagged via `SYSSCALE_BENCH_TAG`).
//!
//! ```text
//! cargo bench -p sysscale-bench --bench stress            # full schedule
//! cargo bench -p sysscale-bench --bench stress -- --short # CI smoke
//! ```

use sysscale::{CollectRuns, RunRecord, SessionPool};
use sysscale_bench::timing::{MixedPerf, StressPerf};
use sysscale_dist::{
    assess_stages, sweep_from_sets, ExecutorMode, GovernorSpec, MatrixRecipe, PlatformSpec,
    ServeOptions, StressMetrics, SweepRecipe, SweepService, WorkloadsSpec,
};
use sysscale_types::exec;
use sysscale_workloads::GeneratorConfig;

/// The unit of load: a compact 4-cell sweep (2 workloads × 2 governors),
/// small enough that a stage is dominated by serving, not simulating.
fn unit_recipe() -> SweepRecipe {
    SweepRecipe::single(MatrixRecipe {
        platform: PlatformSpec::SkylakeM6y75 { tdp_w: 4.5 },
        workloads: WorkloadsSpec::SpecNamed(["gamess", "lbm"].map(str::to_string).to_vec()),
        governors: vec![
            GovernorSpec::Registry("baseline".to_string()),
            GovernorSpec::SysScaleDefault,
        ],
        baseline: Some("baseline".to_string()),
        duration_secs: Some(0.25),
        pinned_fingerprint: None,
    })
}

/// The big mixed-load tenant: a synthetic population of `count` workloads
/// × 2 governors, long enough that the small sweeps submitted alongside
/// it land while it is still running.
fn big_recipe(count: usize) -> SweepRecipe {
    SweepRecipe::single(MatrixRecipe {
        platform: PlatformSpec::SkylakeM6y75 { tdp_w: 6.0 },
        workloads: WorkloadsSpec::Population {
            config: GeneratorConfig::default(),
            count,
        },
        governors: vec![
            GovernorSpec::Registry("baseline".to_string()),
            GovernorSpec::SysScaleDefault,
        ],
        baseline: Some("baseline".to_string()),
        duration_secs: Some(0.25),
        pinned_fingerprint: None,
    })
}

/// The in-process reference stream the served results must match.
fn in_process(recipe: &SweepRecipe) -> Vec<(usize, RunRecord)> {
    let sets = recipe.build().expect("buildable recipe");
    let sweep = sweep_from_sets(&sets);
    let mut pool = SessionPool::new();
    let acc = sweep
        .run_parallel_fold_sharded(&mut pool, 3, recipe.sharding, &CollectRuns)
        .expect("in-process sweep");
    CollectRuns::into_flat_records(acc)
}

/// Runs one stage: `clients` concurrent connections, each submitting
/// `burst` sweeps up front and collecting them all. Returns the stage's
/// metrics plus the raw counters the perf record carries.
fn run_stage(
    recipe: &SweepRecipe,
    expected: &[(usize, RunRecord)],
    clients: usize,
    burst: usize,
    workers: usize,
) -> (StressMetrics, u64, u64) {
    let service = SweepService::start(&ServeOptions {
        workers,
        ..ServeOptions::default()
    });
    std::thread::scope(|scope| {
        for _ in 0..clients {
            let mut client = service.connect();
            scope.spawn(move || {
                let ids: Vec<u64> = (0..burst)
                    .map(|_| client.submit(recipe, 0).expect("submit"))
                    .collect();
                let outcomes = client.collect(&ids).expect("collect");
                for id in &ids {
                    let outcome = &outcomes[id];
                    assert!(outcome.error.is_none(), "healthy sweep failed");
                    assert_eq!(
                        outcome.records, expected,
                        "served records must be byte-identical to the in-process fold"
                    );
                }
                client.close();
            });
        }
    });
    let stats = service.shutdown();
    assert_eq!(stats.submissions, (clients * burst) as u64);
    assert_eq!(stats.errors, 0, "healthy schedule must not error");
    assert_eq!(stats.frames_rejected, 0, "healthy schedule rejects nothing");
    assert_eq!(stats.busy_shed, 0, "healthy schedule sheds nothing");
    (
        stats.metrics(),
        stats.max_queue_depth,
        stats.frames_rejected,
    )
}

/// Nearest-rank percentile over request latencies, in milliseconds.
fn percentile_ms(latencies_micros: &mut [u64], q: f64) -> f64 {
    if latencies_micros.is_empty() {
        return 0.0;
    }
    latencies_micros.sort_unstable();
    let rank =
        ((q * latencies_micros.len() as f64).ceil() as usize).clamp(1, latencies_micros.len());
    latencies_micros[rank - 1] as f64 / 1e3
}

/// Runs the mixed-load schedule once under `mode`: submit the big sweep,
/// then (as soon as it is admitted) a stream of small sweeps on a second
/// connection. Returns the emitted record's fields.
fn run_mixed(
    mode: ExecutorMode,
    workers: usize,
    big: &SweepRecipe,
    big_expected: &[(usize, RunRecord)],
    small: &SweepRecipe,
    small_expected: &[(usize, RunRecord)],
    small_requests: usize,
) -> MixedPerf {
    let service = SweepService::start(&ServeOptions {
        workers,
        mode,
        ..ServeOptions::default()
    });
    let mut big_client = service.connect();
    let mut small_client = service.connect();

    let big_id = big_client.submit(big, 0).expect("submit big");
    // Wait for the admission ack so every small sweep demonstrably
    // arrives with the big sweep holding a depth slot.
    let accepted = big_client.recv().expect("recv").expect("server alive");
    assert!(
        matches!(accepted, sysscale_dist::ServeEvent::Accepted { submit_id, .. } if submit_id == big_id),
        "first frame must be the big sweep's Accepted"
    );
    for _ in 0..small_requests {
        let outcome = small_client.run_sweep(small, 0).expect("small sweep");
        assert_eq!(
            outcome.result().expect("healthy small sweep"),
            small_expected,
            "small sweep must stay byte-identical under mixed load ({mode:?})"
        );
    }
    let outcomes = big_client.collect(&[big_id]).expect("collect big");
    assert_eq!(
        outcomes[&big_id].result().expect("healthy big sweep"),
        big_expected,
        "big sweep must stay byte-identical under mixed load ({mode:?})"
    );
    big_client.close();
    small_client.close();
    let stats = service.shutdown();
    assert_eq!(stats.errors, 0);

    let small_cells = small.total_cells() as u64;
    let big_cells = big.total_cells() as u64;
    let mut small_latencies: Vec<u64> = stats
        .samples
        .iter()
        .filter(|s| s.cells == small_cells)
        .map(|s| s.total_micros)
        .collect();
    assert_eq!(small_latencies.len(), small_requests);
    let big_latency_micros = stats
        .samples
        .iter()
        .find(|s| s.cells == big_cells)
        .map_or(0, |s| s.total_micros);
    MixedPerf {
        mode: match mode {
            ExecutorMode::Serial => "serial",
            ExecutorMode::Shared => "shared",
        },
        workers,
        big_cells,
        small_requests: small_requests as u64,
        small_cells,
        small_p50_latency_ms: percentile_ms(&mut small_latencies, 0.50),
        small_p95_latency_ms: percentile_ms(&mut small_latencies, 0.95),
        big_latency_ms: big_latency_micros as f64 / 1e3,
        busy_shed: stats.busy_shed,
        errors: stats.errors,
    }
}

fn main() {
    let short = std::env::args().any(|a| a == "--short");
    // Fall-then-rise: the load climbs past the service's knee, then drops
    // back to the baseline client count so recovery is observable.
    let (client_stages, burst): (&[usize], usize) = if short {
        (&[1, 4, 1], 2)
    } else {
        (&[1, 2, 4, 8, 2], 3)
    };
    let label = if short {
        "serve_smoke"
    } else {
        "serve_rising_load"
    };
    let workers = exec::default_threads();
    let recipe = unit_recipe();
    let expected = in_process(&recipe);

    let stages: Vec<(StressMetrics, u64, u64, usize)> = client_stages
        .iter()
        .map(|&clients| {
            let (metrics, max_queue_depth, frames_rejected) =
                run_stage(&recipe, &expected, clients, burst, workers);
            println!(
                "stress/{label}: {clients} client(s) -> {:.1} req/s, p95 {:.1} ms, \
                 queue depth {max_queue_depth}",
                metrics.requests_per_sec, metrics.p95_latency_ms,
            );
            (metrics, max_queue_depth, frames_rejected, clients)
        })
        .collect();

    let metrics_only: Vec<StressMetrics> = stages.iter().map(|s| s.0).collect();
    let assessment = assess_stages(&metrics_only);
    let degradation_stage = assessment
        .degradation_stage
        .map_or(-1, |stage| i64::try_from(stage).unwrap_or(-1));
    let recovery_stage = assessment
        .recovery_stage
        .map_or(-1, |stage| i64::try_from(stage).unwrap_or(-1));

    for (stage, (metrics, max_queue_depth, frames_rejected, clients)) in stages.iter().enumerate() {
        let perf = StressPerf {
            stage,
            clients: *clients,
            workers,
            requests: metrics.requests,
            errors: metrics.errors,
            cells: (metrics.requests) * recipe.total_cells() as u64,
            requests_per_sec: metrics.requests_per_sec,
            cells_per_sec: metrics.cells_per_sec,
            p50_latency_ms: metrics.p50_latency_ms,
            p95_latency_ms: metrics.p95_latency_ms,
            p99_latency_ms: metrics.p99_latency_ms,
            p999_latency_ms: metrics.p999_latency_ms,
            queue_share: metrics.queue_share,
            error_rate: metrics.error_rate,
            max_queue_depth: *max_queue_depth,
            frames_rejected: *frames_rejected,
            degradation_stage,
            recovery_stage,
            recovery_ms: assessment.recovery_ms,
        };
        perf.emit("stress", label);
        assert!(perf.requests_per_sec > 0.0);
        assert!(perf.p50_latency_ms <= perf.p95_latency_ms);
        assert!(perf.p95_latency_ms <= perf.p99_latency_ms);
        assert!(perf.p99_latency_ms <= perf.p999_latency_ms);
    }
    match (degradation_stage, recovery_stage) {
        (-1, _) => println!("stress/{label}: no degradation point across the schedule"),
        (d, -1) => println!(
            "stress/{label}: degradation at stage {d}, no recovery ({:.1} ms degraded)",
            assessment.recovery_ms
        ),
        (d, r) => println!(
            "stress/{label}: degradation at stage {d}, recovery at stage {r} \
             ({:.1} ms degraded)",
            assessment.recovery_ms
        ),
    }

    // Mixed load: one big sweep plus a stream of small ones, serial vs
    // shared. The small-sweep p95 is the headline number.
    let mixed_label = if short { "mixed_smoke" } else { "mixed_load" };
    let (big_count, small_requests) = if short { (52, 8) } else { (104, 8) };
    let big = big_recipe(big_count);
    let big_expected = in_process(&big);
    let small_expected = in_process(&recipe);
    let mut p95_by_mode = [0.0f64; 2];
    for (i, mode) in [ExecutorMode::Serial, ExecutorMode::Shared]
        .into_iter()
        .enumerate()
    {
        let perf = run_mixed(
            mode,
            workers,
            &big,
            &big_expected,
            &recipe,
            &small_expected,
            small_requests,
        );
        println!(
            "stress/{mixed_label}: {} -> small p95 {:.1} ms (p50 {:.1} ms), \
             big {:.1} ms, {} cells",
            perf.mode,
            perf.small_p95_latency_ms,
            perf.small_p50_latency_ms,
            perf.big_latency_ms,
            perf.big_cells,
        );
        p95_by_mode[i] = perf.small_p95_latency_ms;
        perf.emit(mixed_label);
    }
    let speedup = p95_by_mode[0] / p95_by_mode[1].max(1e-9);
    println!(
        "stress/{mixed_label}: shared scheduler cuts small-sweep p95 by {speedup:.1}x \
         (serial {:.1} ms -> shared {:.1} ms)",
        p95_by_mode[0], p95_by_mode[1],
    );
}
