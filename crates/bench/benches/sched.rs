//! Benchmark of cost-model-driven sweep scheduling: a pathologically skewed
//! sweep — one ~100×-cost cell among hundreds of short ones, all on one
//! platform — executed under count-based hot-key splitting
//! (`SweepSharding::SplitHotKeys`, the "before") and cost-weighted splitting
//! (`SweepSharding::SplitHotCost`, the "after").
//!
//! Emits one machine-readable `{"kind":"sched_perf",…}` JSON line per
//! sharding mode (wall-clock imbalance ratio, worst-worker share, cells/sec)
//! and appends them to the `SYSSCALE_BENCH_HISTORY` JSONL file when that
//! variable is set (tagged via `SYSSCALE_BENCH_TAG`). Both modes must
//! produce byte-identical records — the strategies differ only in schedule.
//!
//! ```text
//! cargo bench -p sysscale-bench --bench sched            # full skew sweep
//! cargo bench -p sysscale-bench --bench sched -- --short # CI smoke
//! ```

use std::time::{Duration, Instant};

use sysscale::{
    CellId, RunConsumer, RunRecord, Scenario, ScenarioSet, ScenarioSource, SessionPool, SweepSet,
    SweepSharding,
};
use sysscale_bench::timing::SchedPerf;
use sysscale_types::{exec, SimTime};
use sysscale_workloads::spec_workload;

/// Worker threads for the pathological case: enough that a balanced
/// schedule beats a serialized one 4×, few enough that the dominant cell's
/// fair share still matters.
const WORKERS: usize = 4;

/// One worker's observed execution: its start→last-fold span plus the
/// records it folded (kept for the cross-strategy byte-identity check).
struct WorkerTrace {
    started: Instant,
    last: Instant,
    pairs: Vec<(usize, RunRecord)>,
}

/// A consumer that measures per-worker busy spans while collecting records:
/// each worker's accumulator is created when the worker starts and stamps
/// every fold, so `last - started` is that worker's busy wall-clock — the
/// quantity the imbalance ratio is built from.
struct BalanceProbe;

impl RunConsumer for BalanceProbe {
    type Acc = Vec<WorkerTrace>;

    fn accumulator(&self) -> Self::Acc {
        let now = Instant::now();
        vec![WorkerTrace {
            started: now,
            last: now,
            pairs: Vec::new(),
        }]
    }

    fn fold(&self, acc: &mut Self::Acc, cell: CellId, record: RunRecord) {
        let trace = &mut acc[0];
        trace.last = Instant::now();
        trace.pairs.push((cell.flat, record));
    }

    fn merge(&self, into: &mut Self::Acc, from: Self::Acc) {
        into.extend(from);
    }
}

/// The pathological sweep: `short_cells` sub-second cells cycling through a
/// few SPEC workloads, plus one long-horizon cell (~100× the estimated
/// cost) inserted mid-sweep. A single platform, so count-based splitting
/// must cut the one hot key into count-equal blocks — the dominant cell
/// drags a full block of cheap neighbours onto its worker.
fn pathological_set(short_cells: usize, short_secs: f64, long_secs: f64) -> ScenarioSet {
    let names = ["mcf", "lbm", "milc", "gcc", "astar", "povray"];
    let mut set = ScenarioSet::new();
    for i in 0..short_cells {
        if i == short_cells / 2 {
            let dominant = spec_workload("lbm").expect("known workload");
            set.push(
                Scenario::builder(dominant)
                    .duration(SimTime::from_secs(long_secs))
                    .build()
                    .expect("dominant scenario"),
            );
        }
        let workload = spec_workload(names[i % names.len()]).expect("known workload");
        set.push(
            Scenario::builder(workload)
                .duration(SimTime::from_secs(short_secs))
                .build()
                .expect("short scenario"),
        );
    }
    set
}

/// Runs the sweep under one sharding strategy and returns the balance
/// measurement plus the folded records sorted by flat index.
fn run_mode(set: &ScenarioSet, sharding: SweepSharding) -> (SchedPerf, Vec<(usize, RunRecord)>) {
    let mut sweep = SweepSet::new();
    sweep.push_set_ref(set);
    let cells = sweep.cells();
    let mut pool = SessionPool::new();
    let start = Instant::now();
    let traces = sweep
        .run_parallel_fold_sharded(&mut pool, WORKERS, sharding, &BalanceProbe)
        .expect("sweep executes");
    let wall = start.elapsed();

    let worker_busy: Vec<Duration> = traces
        .iter()
        .filter(|t| !t.pairs.is_empty())
        .map(|t| t.last.duration_since(t.started))
        .collect();
    let mut pairs: Vec<(usize, RunRecord)> = traces.into_iter().flat_map(|t| t.pairs).collect();
    pairs.sort_by_key(|(flat, _)| *flat);
    (
        SchedPerf {
            cells,
            threads: exec::effective_workers(WORKERS, cells),
            wall,
            worker_busy,
        },
        pairs,
    )
}

/// The busiest worker's share of total *estimated* cost under an
/// assignment — the deterministic (timing-free) twin of
/// [`SchedPerf::worst_worker_share`].
fn estimated_worst_share(assignment: &[usize], costs: &[u64]) -> f64 {
    let mut per_worker = [0u128; WORKERS];
    for (i, &w) in assignment.iter().enumerate() {
        per_worker[w] += u128::from(costs[i].max(1));
    }
    let total: u128 = per_worker.iter().sum();
    let worst = per_worker.iter().copied().max().unwrap_or(0);
    worst as f64 / total as f64
}

fn main() {
    let short = std::env::args().any(|a| a == "--short");
    let (short_cells, short_secs, long_secs) = if short {
        (120, 0.02, 1.2)
    } else {
        (240, 0.025, 3.0)
    };
    let label = if short { "skew_smoke" } else { "skew_full" };

    let set = pathological_set(short_cells, short_secs, long_secs);
    let cells = ScenarioSource::len(&set);

    // The deterministic half of the story first: the cost model alone must
    // already predict the scheduling win, independent of wall clocks.
    let keys = set.shard_keys();
    let costs = set.cell_costs();
    let (min_cost, max_cost) = (
        costs.iter().copied().min().unwrap_or(1),
        costs.iter().copied().max().unwrap_or(1),
    );
    let count_share = estimated_worst_share(
        &exec::Shard::SplitHotKeys(&keys).assignments(cells, WORKERS),
        &costs,
    );
    let cost_share = estimated_worst_share(
        &exec::Shard::SplitHotCost {
            keys: &keys,
            costs: &costs,
        }
        .assignments(cells, WORKERS),
        &costs,
    );
    println!(
        "sched/{label}: dominant cell {max_cost} vs short {min_cost} estimated cost \
         ({:.0}x); estimated worst-worker share {count_share:.3} (count) -> \
         {cost_share:.3} (cost)",
        max_cost as f64 / min_cost as f64,
    );
    assert!(
        max_cost >= 50 * min_cost,
        "the dominant cell must dwarf the short ones"
    );
    assert!(
        cost_share < count_share,
        "cost-weighted splitting must shrink the estimated critical path"
    );

    // Then the measured halves: before (count-split) and after (cost-split).
    let (count_perf, count_pairs) = run_mode(&set, SweepSharding::SplitHotKeys);
    count_perf.emit("sched", label, "split_hot_keys");
    let (cost_perf, cost_pairs) = run_mode(&set, SweepSharding::SplitHotCost);
    cost_perf.emit("sched", label, "split_hot_cost");

    assert_eq!(
        count_pairs, cost_pairs,
        "sharding strategies must not change a single byte of the results"
    );
    // Wall-clock balance follows the estimate; allow slack for noisy CI.
    assert!(
        cost_perf.worst_worker_share() <= count_perf.worst_worker_share() * 1.05,
        "cost-weighted splitting regressed the measured worst-worker share \
         ({:.3} vs {:.3})",
        cost_perf.worst_worker_share(),
        count_perf.worst_worker_share(),
    );

    println!(
        "sched/{label}: worst-worker share {:.3} -> {:.3}, imbalance {:.2} -> {:.2}, \
         {:.0} -> {:.0} cells/sec ({} cells, {} workers)",
        count_perf.worst_worker_share(),
        cost_perf.worst_worker_share(),
        count_perf.imbalance_ratio(),
        cost_perf.imbalance_ratio(),
        count_perf.cells_per_sec(),
        cost_perf.cells_per_sec(),
        cells,
        count_perf.threads,
    );
}
