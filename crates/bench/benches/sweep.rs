//! Benchmark of the sharded sweep executor: the full Fig. 10 TDP sweep as
//! one platform-sharded batch versus the old one-matrix-per-point path.
//!
//! Emits one machine-readable `{"kind":"sweep_perf",…}` JSON line per
//! measurement (cells/sec over the whole sweep) next to the `matrix_perf` /
//! `slice_perf` lines the other benches produce, and appends them to the
//! `SYSSCALE_BENCH_HISTORY` JSONL file when that variable is set (tagged
//! via `SYSSCALE_BENCH_TAG`).
//!
//! ```text
//! cargo bench -p sysscale-bench --bench sweep            # full fig10 sweep
//! cargo bench -p sysscale-bench --bench sweep -- --short # CI smoke
//! ```

use sysscale::experiments::sensitivity;
use sysscale::{DemandPredictor, SessionPool};
use sysscale_bench::timing::time_sweep;
use sysscale_types::exec;
use sysscale_workloads::spec_cpu2006_suite;

fn main() {
    let short = std::env::args().any(|a| a == "--short");
    let predictor = DemandPredictor::skylake_default();

    let tdps: &[f64] = if short {
        &[3.5, 15.0]
    } else {
        &[3.5, 4.5, 7.0, 15.0]
    };
    // Each TDP point is one SPEC suite × {baseline, sysscale} member.
    let cells_per_point = spec_cpu2006_suite().len() * 2;
    let cells = cells_per_point * tdps.len();
    let threads = exec::default_threads();
    let label = if short { "fig10_smoke" } else { "fig10_full" };

    // The sweep path: every TDP point in a single platform-sharded batch on
    // one pool.
    let (sweep_perf, sweep_points) = time_sweep(
        "sweep",
        &format!("{label}_sweep"),
        tdps.len(),
        cells,
        threads,
        || {
            sensitivity::fig10_in(&mut SessionPool::new(), threads, &predictor, tdps)
                .expect("fig10 sweep executes")
        },
    );

    // Reference: the old per-point path on an equally fresh pool.
    let (per_point_perf, per_point_points) = time_sweep(
        "sweep",
        &format!("{label}_per_point"),
        tdps.len(),
        cells,
        threads,
        || {
            sensitivity::fig10_per_point_in(&mut SessionPool::new(), threads, &predictor, tdps)
                .expect("fig10 per-point executes")
        },
    );

    assert_eq!(
        sweep_points, per_point_points,
        "sweep output must be byte-identical to the per-point path"
    );
    assert!(sweep_perf.cells_per_sec() > 0.0);
    assert!(per_point_perf.cells_per_sec() > 0.0);

    println!(
        "sweep/{label}: {:.0} cells/sec sharded sweep vs {:.0} cells/sec per-point \
         ({} members, {} cells, {} workers)",
        sweep_perf.cells_per_sec(),
        per_point_perf.cells_per_sec(),
        tdps.len(),
        cells,
        sweep_perf.threads,
    );
}
