//! Benchmarks the motivation experiments (Table 1, Fig. 2–4) and prints the
//! regenerated data once.

use sysscale::experiments::motivation;
use sysscale::SocConfig;
use sysscale_bench::{self as fmt, timing::bench, timing::time_matrix};
use sysscale_types::exec;

fn main() {
    let config = SocConfig::skylake_default();

    // Print the regenerated figures once so `cargo bench` output carries the
    // reproduced data.
    println!("{}", fmt::format_table1(&motivation::table1(&config)));
    println!("{}", fmt::format_table2(&config));
    // fig2a is a 3 workloads x 3 governors matrix.
    let (_, fig2a) = time_matrix("motivation", "fig2a", 9, exec::default_threads(), || {
        motivation::fig2a(&config).unwrap()
    });
    println!("{}", fmt::format_fig2a(&fig2a));
    println!("{}", fmt::format_fig3b(&motivation::fig3b()));
    println!("{}", fmt::format_fig4(&motivation::fig4(&config).unwrap()));

    bench("motivation", "fig2a_md_dvfs_impact", 10, || {
        motivation::fig2a(&config).unwrap()
    });
    bench(
        "motivation",
        "fig3b_static_demand_table",
        10,
        motivation::fig3b,
    );
    bench("motivation", "fig4_mrc_ablation", 10, || {
        motivation::fig4(&config).unwrap()
    });
}
