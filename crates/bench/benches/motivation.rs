//! Benchmarks the motivation experiments (Table 1, Fig. 2–4) and prints the
//! regenerated data once.

use criterion::{criterion_group, criterion_main, Criterion};

use sysscale::experiments::motivation;
use sysscale::SocConfig;
use sysscale_bench as fmt;

fn bench_motivation(c: &mut Criterion) {
    let config = SocConfig::skylake_default();

    // Print the regenerated figures once so `cargo bench` output carries the
    // reproduced data.
    println!("{}", fmt::format_table1(&motivation::table1(&config)));
    println!("{}", fmt::format_table2(&config));
    println!("{}", fmt::format_fig2a(&motivation::fig2a(&config).unwrap()));
    println!("{}", fmt::format_fig3b(&motivation::fig3b()));
    println!("{}", fmt::format_fig4(&motivation::fig4(&config).unwrap()));

    let mut group = c.benchmark_group("motivation");
    group.sample_size(10);
    group.bench_function("fig2a_md_dvfs_impact", |b| {
        b.iter(|| motivation::fig2a(&config).unwrap())
    });
    group.bench_function("fig3b_static_demand_table", |b| {
        b.iter(motivation::fig3b)
    });
    group.bench_function("fig4_mrc_ablation", |b| {
        b.iter(|| motivation::fig4(&config).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_motivation);
criterion_main!(benches);
