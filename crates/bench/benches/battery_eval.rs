//! Benchmarks the Fig. 9 battery-life evaluation and prints the figure once.

use sysscale::experiments::evaluation;
use sysscale::{DemandPredictor, Scenario, SimSession, SocConfig};
use sysscale_bench::timing::{bench, time_matrix};
use sysscale_types::exec;
use sysscale_workloads::{battery_life_suite, battery_workload};

fn main() {
    let config = SocConfig::skylake_default();
    let predictor = DemandPredictor::skylake_default();

    // fig9 runs the battery-life suite x 4 governors as one matrix.
    let cells = battery_life_suite().len() * 4;
    let (_, fig9) = time_matrix(
        "battery_eval",
        "fig9",
        cells,
        exec::default_threads(),
        || evaluation::fig9(&config, &predictor).unwrap(),
    );
    println!("{}", sysscale_bench::format_fig9(&fig9));

    let mut session = SimSession::new();
    let video = Scenario::builder(battery_workload("video-playback").unwrap())
        .config(config.clone())
        .governor("sysscale")
        .build()
        .unwrap();
    bench("battery_eval", "sysscale_run_video_playback", 10, || {
        session.run(&video).unwrap()
    });
    bench("battery_eval", "fig9_full", 10, || {
        evaluation::fig9(&config, &predictor).unwrap()
    });
}
