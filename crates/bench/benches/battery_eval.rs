//! Benchmarks the Fig. 9 battery-life evaluation and prints the figure once.

use criterion::{criterion_group, criterion_main, Criterion};

use sysscale::experiments::{evaluation, run_workload};
use sysscale::{DemandPredictor, SocConfig, SysScaleGovernor};
use sysscale_workloads::battery_workload;

fn bench_battery_eval(c: &mut Criterion) {
    let config = SocConfig::skylake_default();
    let predictor = DemandPredictor::skylake_default();

    let fig9 = evaluation::fig9(&config, &predictor).unwrap();
    println!("{}", sysscale_bench::format_fig9(&fig9));

    let video = battery_workload("video-playback").unwrap();
    let mut group = c.benchmark_group("battery_eval");
    group.sample_size(10);
    group.bench_function("sysscale_run_video_playback", |b| {
        b.iter(|| {
            run_workload(
                &config,
                &video,
                &mut SysScaleGovernor::with_default_thresholds(),
            )
            .unwrap()
        })
    });
    group.bench_function("fig9_full", |b| {
        b.iter(|| evaluation::fig9(&config, &predictor).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_battery_eval);
criterion_main!(benches);
