//! # sysscale-bench
//!
//! Shared formatting helpers for the SysScale benchmark harness: the
//! `figures` binary regenerates every table and figure of the paper's
//! evaluation, and the Criterion benches time the experiment kernels on
//! reduced inputs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use sysscale::experiments::evaluation::{PowerReductionFigure, SpeedupFigure};
use sysscale::experiments::motivation::{Fig2aRow, Fig3bRow, Fig4Result, Table1Row};
use sysscale::experiments::predictor_study::PredictorPanel;
use sysscale::experiments::sensitivity::{AblationRow, DramSensitivity, Overheads, TdpPoint};
use sysscale::SocConfig;

/// Formats Table 1.
#[must_use]
pub fn format_table1(rows: &[Table1Row]) -> String {
    let mut out = String::from("Table 1 — experimental setups\n");
    out.push_str(&format!(
        "{:<22} {:>12} {:>12}\n",
        "component", "baseline", "MD-DVFS"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<22} {:>12} {:>12}\n",
            r.component, r.baseline, r.md_dvfs
        ));
    }
    out
}

/// Formats Table 2 (platform parameters) from a configuration.
#[must_use]
pub fn format_table2(config: &SocConfig) -> String {
    let mut out = String::from("Table 2 — SoC and memory parameters\n");
    out.push_str(&format!(
        "  CPU cores           : {} (x{} threads)\n",
        config.cpu.cores, config.cpu.threads_per_core
    ));
    out.push_str(&format!(
        "  LLC                 : {:.0} MiB\n",
        config.llc.size_mib
    ));
    out.push_str(&format!(
        "  TDP                 : {:.1} W\n",
        config.tdp.as_watts()
    ));
    out.push_str(&format!(
        "  DRAM                : {} dual-channel, {:.2} GHz default bin\n",
        config.dram().kind,
        config.uncore_ladder().highest().dram_freq.as_ghz()
    ));
    out.push_str(&format!(
        "  Uncore ladder       : {} operating points\n",
        config.uncore_ladder().len()
    ));
    out.push_str(&format!(
        "  Evaluation interval : {:.0} ms\n",
        config.evaluation_interval.as_millis()
    ));
    out
}

/// Formats the Fig. 2(a) rows.
#[must_use]
pub fn format_fig2a(rows: &[Fig2aRow]) -> String {
    let mut out = String::from("Fig. 2(a) — impact of static MD-DVFS (vs baseline)\n");
    out.push_str(&format!(
        "{:<16} {:>9} {:>9} {:>9} {:>9} {:>14}\n",
        "workload", "power", "energy", "perf", "EDP", "perf@redist"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<16} {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}% {:>13.1}%\n",
            r.workload,
            -r.power_reduction_pct,
            -r.energy_reduction_pct,
            r.perf_change_pct,
            r.edp_improvement_pct,
            r.perf_change_with_redistribution_pct
        ));
    }
    out
}

/// Formats the Fig. 3(b) rows.
#[must_use]
pub fn format_fig3b(rows: &[Fig3bRow]) -> String {
    let mut out = String::from("Fig. 3(b) — static bandwidth demand per configuration\n");
    for r in rows {
        out.push_str(&format!(
            "  {:<22} {:>7.2} GiB/s ({:>4.1}% of peak)\n",
            r.configuration,
            r.demand_gib_s,
            r.fraction_of_peak * 100.0
        ));
    }
    out
}

/// Formats the Fig. 4 result.
#[must_use]
pub fn format_fig4(result: &Fig4Result) -> String {
    format!(
        "Fig. 4 — unoptimized MRC values on the peak-bandwidth microbenchmark\n  \
         SoC power increase     : {:+.1}% (paper: +22% on the memory rail)\n  \
         memory power increase  : {:+.1}%\n  \
         performance degradation: {:+.1}% (paper: -10%)\n",
        result.power_increase_pct, result.memory_power_increase_pct, result.perf_degradation_pct
    )
}

/// Formats the Fig. 6 panels.
#[must_use]
pub fn format_fig6(panels: &[PredictorPanel]) -> String {
    let mut out = String::from("Fig. 6 — predictor accuracy (actual vs predicted impact)\n");
    out.push_str(&format!(
        "{:<10} {:>14} {:>10} {:>12} {:>10} {:>11}\n",
        "class", "freq pair", "workloads", "correlation", "accuracy", "false pos."
    ));
    for p in panels {
        out.push_str(&format!(
            "{:<10} {:>6.2}->{:<6.2} {:>10} {:>12.2} {:>9.1}% {:>10.1}%\n",
            p.class.name(),
            p.high_ghz,
            p.low_ghz,
            p.workloads,
            p.correlation,
            p.accuracy_pct,
            p.false_positive_pct
        ));
    }
    out
}

/// Formats a speedup figure (Figs. 7 and 8).
#[must_use]
pub fn format_speedup_figure(title: &str, figure: &SpeedupFigure) -> String {
    let mut out = format!("{title}\n");
    out.push_str(&format!(
        "{:<18} {:>12} {:>12} {:>10}\n",
        "workload", "MemScale-R", "CoScale-R", "SysScale"
    ));
    for r in &figure.rows {
        out.push_str(&format!(
            "{:<18} {:>11.1}% {:>11.1}% {:>9.1}%\n",
            r.workload, r.memscale_redist_pct, r.coscale_redist_pct, r.sysscale_pct
        ));
    }
    out.push_str(&format!(
        "{:<18} {:>11.1}% {:>11.1}% {:>9.1}%   (max SysScale {:.1}%)\n",
        "average",
        figure.memscale_avg_pct,
        figure.coscale_avg_pct,
        figure.sysscale_avg_pct,
        figure.sysscale_max_pct
    ));
    out
}

/// Formats the Fig. 9 figure.
#[must_use]
pub fn format_fig9(figure: &PowerReductionFigure) -> String {
    let mut out = String::from("Fig. 9 — battery-life average power reduction\n");
    out.push_str(&format!(
        "{:<20} {:>10} {:>12} {:>12} {:>10}\n",
        "workload", "baseline W", "MemScale-R", "CoScale-R", "SysScale"
    ));
    for r in &figure.rows {
        out.push_str(&format!(
            "{:<20} {:>10.3} {:>11.1}% {:>11.1}% {:>9.1}%\n",
            r.workload,
            r.baseline_power_w,
            r.memscale_redist_pct,
            r.coscale_redist_pct,
            r.sysscale_pct
        ));
    }
    out.push_str(&format!(
        "SysScale average {:.1}% (max {:.1}%)\n",
        figure.sysscale_avg_pct, figure.sysscale_max_pct
    ));
    out
}

/// Formats the Fig. 10 TDP-sensitivity points.
#[must_use]
pub fn format_fig10(points: &[TdpPoint]) -> String {
    let mut out = String::from("Fig. 10 — SysScale SPEC speedup vs TDP (violin summaries)\n");
    out.push_str(&format!(
        "{:>7} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}\n",
        "TDP", "mean", "median", "p25", "p75", "min", "max"
    ));
    for p in points {
        out.push_str(&format!(
            "{:>6.1}W {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%\n",
            p.tdp_w,
            p.summary.mean,
            p.summary.median,
            p.summary.p25,
            p.summary.p75,
            p.summary.min,
            p.summary.max
        ));
    }
    out
}

/// Formats the DRAM sensitivity result.
#[must_use]
pub fn format_dram_sensitivity(result: &DramSensitivity) -> String {
    format!(
        "Sec. 7.4 — DRAM sensitivity\n  \
         LPDDR3 1.6->1.07 GHz battery power reduction : {:.1}%\n  \
         DDR4   1.87->1.33 GHz battery power reduction: {:.1}%\n  \
         DDR4 shortfall vs LPDDR3                      : {:.1}% (paper: ~7%)\n  \
         SPEC speedup, 2-point ladder                  : {:.1}%\n  \
         SPEC speedup, 3-point ladder (adds 0.8 GHz)   : {:.1}%\n",
        result.lpddr3_avg_power_reduction_pct,
        result.ddr4_avg_power_reduction_pct,
        result.ddr4_shortfall_pct,
        result.two_point_avg_speedup_pct,
        result.three_point_avg_speedup_pct
    )
}

/// Formats the overhead accounting.
#[must_use]
pub fn format_overheads(o: &Overheads) -> String {
    format!(
        "Sec. 5 — implementation overheads\n  \
         transition stall : {:.1} us (budget <10 us)\n  \
         MRC SRAM         : {} B (budget ~512 B)\n  \
         PMU firmware     : {} B (budget ~600 B)\n  \
         new counters     : {}\n",
        o.transition_stall_us, o.mrc_sram_bytes, o.firmware_bytes, o.new_counters
    )
}

/// Formats the ablation rows.
#[must_use]
pub fn format_ablations(rows: &[AblationRow]) -> String {
    let mut out =
        String::from("Ablations — SPEC-subset speedup / video-playback power reduction\n");
    for r in rows {
        out.push_str(&format!(
            "  {:<24} {:>7.1}% {:>7.1}%\n",
            r.name, r.avg_speedup_pct, r.video_playback_power_reduction_pct
        ));
    }
    out
}

/// A minimal wall-clock benchmarking harness.
///
/// The workspace builds offline, so the Criterion dependency is replaced by
/// this deliberately small timer: each measurement runs one warm-up
/// iteration, then `iters` timed iterations, and prints the mean and
/// fastest time per iteration. Benches are wired with `harness = false`
/// and run through `cargo bench`.
pub mod timing {
    use std::time::{Duration, Instant};

    /// Environment variable naming the JSONL file perf records are appended
    /// to (in addition to stdout). Unset = no history is written.
    pub const HISTORY_ENV: &str = "SYSSCALE_BENCH_HISTORY";

    /// Environment variable carrying the PR/commit tag stamped on each
    /// history record (defaults to `untagged`).
    pub const TAG_ENV: &str = "SYSSCALE_BENCH_TAG";

    /// The tag stamped on history records: `SYSSCALE_BENCH_TAG`, or
    /// `untagged`.
    #[must_use]
    pub fn history_tag() -> String {
        std::env::var(TAG_ENV).unwrap_or_else(|_| "untagged".to_string())
    }

    /// JSON-string-escapes a tag so a quote/backslash/control character in
    /// `SYSSCALE_BENCH_TAG` cannot corrupt the append-only history file.
    fn escape_tag(tag: &str) -> String {
        let mut out = String::with_capacity(tag.len());
        for c in tag.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }

    /// Appends one perf JSON line to the `SYSSCALE_BENCH_HISTORY` file (if
    /// configured), prefixing it with the [`history_tag`]. `line` must be a
    /// one-line JSON object starting with `{`. IO errors are reported on
    /// stderr but never fail the bench.
    pub fn append_history(line: &str) {
        let Ok(path) = std::env::var(HISTORY_ENV) else {
            return;
        };
        if path.is_empty() {
            return;
        }
        let tagged = format!(
            "{{\"tag\":\"{}\",{}\n",
            escape_tag(&history_tag()),
            line.trim_start_matches('{')
        );
        use std::io::Write;
        let written = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| f.write_all(tagged.as_bytes()));
        if let Err(e) = written {
            eprintln!("bench history append to {path} failed: {e}");
        }
    }

    /// Wall-clock measurement of one scenario-matrix execution, emitted as a
    /// machine-readable JSON line so the perf trajectory can be tracked
    /// across PRs (`grep '"kind":"matrix_perf"'` over bench logs).
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct MatrixPerf {
        /// Number of scenario cells in the matrix.
        pub cells: usize,
        /// Worker-thread count the matrix ran at.
        pub threads: usize,
        /// Wall-clock time of the execution.
        pub wall: Duration,
    }

    impl MatrixPerf {
        /// Cells executed per wall-clock second.
        #[must_use]
        pub fn cells_per_sec(&self) -> f64 {
            let secs = self.wall.as_secs_f64();
            if secs > 0.0 {
                self.cells as f64 / secs
            } else {
                0.0
            }
        }

        /// Prints the canonical one-line JSON record:
        /// `{"kind":"matrix_perf","bench":…,"matrix":…,"cells":…,"threads":…,
        /// "wall_clock_ms":…,"cells_per_sec":…}` — and appends it to the
        /// [`HISTORY_ENV`] file when configured.
        pub fn emit(&self, bench: &str, matrix: &str) {
            let line = format!(
                "{{\"kind\":\"matrix_perf\",\"bench\":\"{bench}\",\"matrix\":\"{matrix}\",\
                 \"cells\":{},\"threads\":{},\"wall_clock_ms\":{:.3},\"cells_per_sec\":{:.3}}}",
                self.cells,
                self.threads,
                self.wall.as_secs_f64() * 1e3,
                self.cells_per_sec(),
            );
            println!("{line}");
            append_history(&line);
        }
    }

    /// Wall-clock measurement of the simulator's inner slice loop over one
    /// matrix execution, emitted as a machine-readable JSON line
    /// (`"kind":"slice_perf"`). Where [`MatrixPerf`] tracks whole-cell
    /// throughput, this tracks the per-slice hot path: slices per second
    /// and how many memory fixed-point iterations each slice paid.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct SlicePerf {
        /// Number of scenario cells executed.
        pub cells: usize,
        /// Worker-thread count the matrix ran at.
        pub threads: usize,
        /// Total simulated slices across all cells.
        pub slices: u64,
        /// Total memory fixed-point iterations across all slices.
        pub fixed_point_iters: u64,
        /// Wall-clock time of the execution.
        pub wall: Duration,
    }

    impl SlicePerf {
        /// Simulated slices executed per wall-clock second.
        #[must_use]
        pub fn slices_per_sec(&self) -> f64 {
            let secs = self.wall.as_secs_f64();
            if secs > 0.0 {
                self.slices as f64 / secs
            } else {
                0.0
            }
        }

        /// Average memory fixed-point iterations per slice (delegates to
        /// [`sysscale::SliceLoopStats`], the single definition of the
        /// metric).
        #[must_use]
        pub fn iters_per_slice(&self) -> f64 {
            sysscale::SliceLoopStats {
                slices: self.slices,
                fixed_point_iters: self.fixed_point_iters,
            }
            .iters_per_slice()
        }

        /// Prints the canonical one-line JSON record:
        /// `{"kind":"slice_perf","bench":…,"matrix":…,"cells":…,"threads":…,
        /// "slices":…,"wall_clock_ms":…,"slices_per_sec":…,
        /// "fixed_point_iters_per_slice":…}` — and appends it to the
        /// [`HISTORY_ENV`] file when configured.
        pub fn emit(&self, bench: &str, matrix: &str) {
            let line = format!(
                "{{\"kind\":\"slice_perf\",\"bench\":\"{bench}\",\"matrix\":\"{matrix}\",\
                 \"cells\":{},\"threads\":{},\"slices\":{},\"wall_clock_ms\":{:.3},\
                 \"slices_per_sec\":{:.1},\"fixed_point_iters_per_slice\":{:.4}}}",
                self.cells,
                self.threads,
                self.slices,
                self.wall.as_secs_f64() * 1e3,
                self.slices_per_sec(),
                self.iters_per_slice(),
            );
            println!("{line}");
            append_history(&line);
        }
    }

    /// Times `run` once, emits the JSON record, and returns the measurement
    /// together with `run`'s output. The recorded thread count is clamped to
    /// the cell count, mirroring what the executor actually uses.
    pub fn time_matrix<T>(
        bench: &str,
        matrix: &str,
        cells: usize,
        threads: usize,
        run: impl FnOnce() -> T,
    ) -> (MatrixPerf, T) {
        let start = Instant::now();
        let out = run();
        let perf = MatrixPerf {
            cells,
            threads: sysscale_types::exec::effective_workers(threads, cells),
            wall: start.elapsed(),
        };
        perf.emit(bench, matrix);
        (perf, out)
    }

    /// Wall-clock measurement of one whole-sweep execution — a multi-
    /// configuration study (e.g. the full Fig. 10 TDP sweep) flattened into
    /// a single sharded batch — emitted as a machine-readable JSON line
    /// (`"kind":"sweep_perf"`). Where [`MatrixPerf`] tracks one matrix,
    /// this tracks sweep-level throughput: cells/sec across every
    /// configuration point of the batch.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct SweepPerf {
        /// Number of member batches (configuration points) in the sweep.
        pub members: usize,
        /// Total scenario cells across all members.
        pub cells: usize,
        /// Worker-thread count the sweep ran at.
        pub threads: usize,
        /// Wall-clock time of the execution.
        pub wall: Duration,
    }

    impl SweepPerf {
        /// Cells executed per wall-clock second over the whole sweep.
        #[must_use]
        pub fn cells_per_sec(&self) -> f64 {
            let secs = self.wall.as_secs_f64();
            if secs > 0.0 {
                self.cells as f64 / secs
            } else {
                0.0
            }
        }

        /// Prints the canonical one-line JSON record:
        /// `{"kind":"sweep_perf","bench":…,"sweep":…,"members":…,"cells":…,
        /// "threads":…,"wall_clock_ms":…,"cells_per_sec":…}` — and appends
        /// it to the [`HISTORY_ENV`] file when configured.
        pub fn emit(&self, bench: &str, sweep: &str) {
            let line = format!(
                "{{\"kind\":\"sweep_perf\",\"bench\":\"{bench}\",\"sweep\":\"{sweep}\",\
                 \"members\":{},\"cells\":{},\"threads\":{},\"wall_clock_ms\":{:.3},\
                 \"cells_per_sec\":{:.3}}}",
                self.members,
                self.cells,
                self.threads,
                self.wall.as_secs_f64() * 1e3,
                self.cells_per_sec(),
            );
            println!("{line}");
            append_history(&line);
        }
    }

    /// Times `run` once, emits the sweep-perf JSON record, and returns the
    /// measurement together with `run`'s output. The recorded thread count
    /// is clamped to the cell count, mirroring the executor.
    pub fn time_sweep<T>(
        bench: &str,
        sweep: &str,
        members: usize,
        cells: usize,
        threads: usize,
        run: impl FnOnce() -> T,
    ) -> (SweepPerf, T) {
        let start = Instant::now();
        let out = run();
        let perf = SweepPerf {
            members,
            cells,
            threads: sysscale_types::exec::effective_workers(threads, cells),
            wall: start.elapsed(),
        };
        perf.emit(bench, sweep);
        (perf, out)
    }

    /// Wall-clock **and peak-result-memory** measurement of one fold-based
    /// (or materialized reference) sweep execution, emitted as a
    /// machine-readable JSON line (`"kind":"fold_perf"`). Where
    /// [`SweepPerf`] tracks sweep throughput alone, this additionally
    /// records the peak heap growth observed while the sweep's results were
    /// aggregated — the number the fold pipeline exists to hold flat. The
    /// `fold` bench emits one record per mode (`"fold"` vs
    /// `"materialized"`) so the memory and throughput deltas land in the
    /// same history file.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct FoldPerf {
        /// Total scenario cells across the sweep.
        pub cells: usize,
        /// Worker-thread count the sweep ran at.
        pub threads: usize,
        /// Wall-clock time of the execution.
        pub wall: Duration,
        /// Peak heap growth (bytes above entry level) during the
        /// execution — result records, accumulators, and scheduling
        /// metadata; the bench binary measures it with a live-bytes
        /// tracking allocator.
        pub peak_result_bytes: u64,
    }

    impl FoldPerf {
        /// Cells executed per wall-clock second.
        #[must_use]
        pub fn cells_per_sec(&self) -> f64 {
            let secs = self.wall.as_secs_f64();
            if secs > 0.0 {
                self.cells as f64 / secs
            } else {
                0.0
            }
        }

        /// Prints the canonical one-line JSON record:
        /// `{"kind":"fold_perf","bench":…,"sweep":…,"mode":…,"cells":…,
        /// "threads":…,"wall_clock_ms":…,"cells_per_sec":…,
        /// "peak_result_bytes":…}` — and appends it to the [`HISTORY_ENV`]
        /// file when configured. `mode` distinguishes the fold pipeline
        /// from its materialized reference.
        pub fn emit(&self, bench: &str, sweep: &str, mode: &str) {
            let line = format!(
                "{{\"kind\":\"fold_perf\",\"bench\":\"{bench}\",\"sweep\":\"{sweep}\",\
                 \"mode\":\"{mode}\",\"cells\":{},\"threads\":{},\"wall_clock_ms\":{:.3},\
                 \"cells_per_sec\":{:.3},\"peak_result_bytes\":{}}}",
                self.cells,
                self.threads,
                self.wall.as_secs_f64() * 1e3,
                self.cells_per_sec(),
                self.peak_result_bytes,
            );
            println!("{line}");
            append_history(&line);
        }
    }

    /// Wall-clock measurement of one *distributed* sweep execution
    /// (dispatcher + worker OS processes), emitted as a machine-readable
    /// JSON line (`"kind":"dist_perf"`). Where [`FoldPerf`] tracks the
    /// in-process fold, this tracks the cross-process executor: throughput
    /// *including* process spawn and wire-protocol overhead, plus the
    /// protocol traffic that produced it. The `dist` bench emits one record
    /// per mode (`"in_process"` reference vs `"procs<N>"`) so the
    /// distribution overhead lands in the same history file.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct DistPerf {
        /// Total scenario cells across the sweep.
        pub cells: usize,
        /// Worker process count (1 for the in-process reference).
        pub procs: usize,
        /// Wall-clock time of the execution, including worker spawn,
        /// recipe shipping, and result streaming.
        pub wall: Duration,
        /// Result frames received over the wire (0 for the in-process
        /// reference).
        pub result_frames: u64,
        /// Leases re-issued after worker deaths (0 in a healthy run).
        pub reissued_leases: usize,
        /// Frames dropped as duplicates/stale (0 without wire faults).
        pub frames_rejected: u64,
        /// Cells quarantined into the partial-result manifest (0 outside
        /// quarantine mode).
        pub quarantined_cells: usize,
        /// Leases restored from a checkpoint journal (0 without a resume).
        pub journal_resumes: usize,
        /// Transient I/O retries absorbed (connect backoff, `WouldBlock`).
        pub retries: u64,
    }

    impl DistPerf {
        /// Cells executed per wall-clock second.
        #[must_use]
        pub fn cells_per_sec(&self) -> f64 {
            let secs = self.wall.as_secs_f64();
            if secs > 0.0 {
                self.cells as f64 / secs
            } else {
                0.0
            }
        }

        /// Prints the canonical one-line JSON record:
        /// `{"kind":"dist_perf","bench":…,"sweep":…,"mode":…,"cells":…,
        /// "procs":…,"wall_clock_ms":…,"cells_per_sec":…,"result_frames":…,
        /// "reissued_leases":…,"frames_rejected":…,"quarantined_cells":…,
        /// "journal_resumes":…,"retries":…}` — and appends it to the
        /// [`HISTORY_ENV`] file when configured.
        pub fn emit(&self, bench: &str, sweep: &str, mode: &str) {
            let line = format!(
                "{{\"kind\":\"dist_perf\",\"bench\":\"{bench}\",\"sweep\":\"{sweep}\",\
                 \"mode\":\"{mode}\",\"cells\":{},\"procs\":{},\"wall_clock_ms\":{:.3},\
                 \"cells_per_sec\":{:.3},\"result_frames\":{},\"reissued_leases\":{},\
                 \"frames_rejected\":{},\"quarantined_cells\":{},\"journal_resumes\":{},\
                 \"retries\":{}}}",
                self.cells,
                self.procs,
                self.wall.as_secs_f64() * 1e3,
                self.cells_per_sec(),
                self.result_frames,
                self.reissued_leases,
                self.frames_rejected,
                self.quarantined_cells,
                self.journal_resumes,
                self.retries,
            );
            println!("{line}");
            append_history(&line);
        }
    }

    /// Load measurement of one stage of the sweep-service stress schedule,
    /// emitted as a machine-readable JSON line (`"kind":"stress_perf"`).
    /// Where [`DistPerf`] tracks one sweep through the cross-process
    /// executor, this tracks the *serving* layer under rising load: each
    /// record is one stage of the schedule (a fixed client count, every
    /// client submitting a burst of sweeps to one `SweepService`), carrying
    /// the llamaburn-style summary — requests/sec, p50/p95/p99/p999
    /// latency, error rate — plus the queue depth that produced the
    /// throughput, so the history file holds the whole queue-depth vs
    /// throughput curve. Every record of a schedule carries the same
    /// `degradation_stage`: the first stage index whose latency blew past
    /// the first stage's (see `sysscale_dist::degradation_point`), or `-1`
    /// while the service degrades gracefully.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct StressPerf {
        /// Stage index within the schedule (0-based).
        pub stage: usize,
        /// Concurrent clients this stage ran.
        pub clients: usize,
        /// Fold workers the service executed sweeps with.
        pub workers: usize,
        /// Submissions this stage completed.
        pub requests: u64,
        /// Submissions that failed.
        pub errors: u64,
        /// Total cells folded across the stage.
        pub cells: u64,
        /// Completed submissions per second of service wall time.
        pub requests_per_sec: f64,
        /// Cells folded per second of service wall time.
        pub cells_per_sec: f64,
        /// Median admission→completion latency, milliseconds.
        pub p50_latency_ms: f64,
        /// 95th-percentile latency, milliseconds.
        pub p95_latency_ms: f64,
        /// 99th-percentile latency, milliseconds.
        pub p99_latency_ms: f64,
        /// 99.9th-percentile latency, milliseconds.
        pub p999_latency_ms: f64,
        /// Mean queueing share of total latency (0..=1).
        pub queue_share: f64,
        /// `errors / requests`.
        pub error_rate: f64,
        /// Deepest executor queue observed during the stage.
        pub max_queue_depth: u64,
        /// Frames the service rejected (CRC/protocol); 0 on a healthy run.
        pub frames_rejected: u64,
        /// First degraded stage of the whole schedule, `-1` for none.
        pub degradation_stage: i64,
        /// First post-degradation stage whose p95 recovered to within the
        /// baseline threshold with zero errors, `-1` when the schedule
        /// never degraded or never recovered.
        pub recovery_stage: i64,
        /// Wall time the schedule spent degraded (degradation through
        /// recovery, or through the schedule's end), milliseconds; 0 when
        /// nothing degraded.
        pub recovery_ms: f64,
    }

    impl StressPerf {
        /// Prints the canonical one-line JSON record:
        /// `{"kind":"stress_perf","bench":…,"schedule":…,"stage":…,
        /// "clients":…,"workers":…,"requests":…,"errors":…,"cells":…,
        /// "requests_per_sec":…,"cells_per_sec":…,"p50_latency_ms":…,
        /// "p95_latency_ms":…,"p99_latency_ms":…,"p999_latency_ms":…,
        /// "queue_share":…,"error_rate":…,"max_queue_depth":…,
        /// "frames_rejected":…,"degradation_stage":…,"recovery_stage":…,
        /// "recovery_ms":…}` — and appends it to the [`HISTORY_ENV`] file
        /// when configured.
        pub fn emit(&self, bench: &str, schedule: &str) {
            let line = format!(
                "{{\"kind\":\"stress_perf\",\"bench\":\"{bench}\",\
                 \"schedule\":\"{schedule}\",\"stage\":{},\"clients\":{},\
                 \"workers\":{},\"requests\":{},\"errors\":{},\"cells\":{},\
                 \"requests_per_sec\":{:.3},\"cells_per_sec\":{:.3},\
                 \"p50_latency_ms\":{:.3},\"p95_latency_ms\":{:.3},\
                 \"p99_latency_ms\":{:.3},\"p999_latency_ms\":{:.3},\
                 \"queue_share\":{:.4},\"error_rate\":{:.4},\
                 \"max_queue_depth\":{},\"frames_rejected\":{},\
                 \"degradation_stage\":{},\"recovery_stage\":{},\
                 \"recovery_ms\":{:.3}}}",
                self.stage,
                self.clients,
                self.workers,
                self.requests,
                self.errors,
                self.cells,
                self.requests_per_sec,
                self.cells_per_sec,
                self.p50_latency_ms,
                self.p95_latency_ms,
                self.p99_latency_ms,
                self.p999_latency_ms,
                self.queue_share,
                self.error_rate,
                self.max_queue_depth,
                self.frames_rejected,
                self.degradation_stage,
                self.recovery_stage,
                self.recovery_ms,
            );
            println!("{line}");
            append_history(&line);
        }
    }

    /// Wall-clock **mixed-load** measurement of the sweep service: one
    /// long-running big sweep plus a stream of small sweeps, measured once
    /// under the serial executor and once under the shared cost-aware
    /// scheduler (`sysscale_dist::ExecutorMode`). The record carries the
    /// small-sweep latency percentiles — the number the shared scheduler
    /// exists to improve — so the history file holds the serial-vs-shared
    /// delta as a trajectory. One record per mode.
    #[derive(Debug, Clone, PartialEq)]
    pub struct MixedPerf {
        /// Executor mode: `"serial"` or `"shared"`.
        pub mode: &'static str,
        /// Fold workers the service ran.
        pub workers: usize,
        /// Cells of the big background sweep.
        pub big_cells: u64,
        /// Small sweeps submitted while the big sweep ran.
        pub small_requests: u64,
        /// Cells per small sweep.
        pub small_cells: u64,
        /// Median small-sweep admission→completion latency, milliseconds.
        pub small_p50_latency_ms: f64,
        /// 95th-percentile small-sweep latency, milliseconds.
        pub small_p95_latency_ms: f64,
        /// Big-sweep admission→completion latency, milliseconds.
        pub big_latency_ms: f64,
        /// Submissions shed by the admission bound; 0 on a healthy run.
        pub busy_shed: u64,
        /// Submissions that failed; 0 on a healthy run.
        pub errors: u64,
    }

    impl MixedPerf {
        /// Prints the canonical one-line JSON record
        /// (`{"kind":"mixed_perf","bench":…,"mode":…,…}`) and appends it
        /// to the [`HISTORY_ENV`] file when configured.
        pub fn emit(&self, bench: &str) {
            let line = format!(
                "{{\"kind\":\"mixed_perf\",\"bench\":\"{bench}\",\
                 \"mode\":\"{}\",\"workers\":{},\"big_cells\":{},\
                 \"small_requests\":{},\"small_cells\":{},\
                 \"small_p50_latency_ms\":{:.3},\"small_p95_latency_ms\":{:.3},\
                 \"big_latency_ms\":{:.3},\"busy_shed\":{},\"errors\":{}}}",
                self.mode,
                self.workers,
                self.big_cells,
                self.small_requests,
                self.small_cells,
                self.small_p50_latency_ms,
                self.small_p95_latency_ms,
                self.big_latency_ms,
                self.busy_shed,
                self.errors,
            );
            println!("{line}");
            append_history(&line);
        }
    }

    /// Wall-clock **load-balance** measurement of one sweep execution,
    /// emitted as a machine-readable JSON line (`"kind":"sched_perf"`).
    /// Where [`SweepPerf`] tracks aggregate throughput, this tracks how
    /// evenly the scheduler spread the work: per-worker busy time feeds an
    /// imbalance ratio (worst worker ÷ ideal equal share) and a worst-worker
    /// share (worst worker ÷ total busy time). The `sched` bench emits one
    /// record per sharding mode on a pathologically skewed sweep, so the
    /// count-based vs cost-based scheduling delta lands in the history file
    /// as a trajectory.
    #[derive(Debug, Clone, PartialEq)]
    pub struct SchedPerf {
        /// Total scenario cells across the sweep.
        pub cells: usize,
        /// Worker-thread count the sweep ran at.
        pub threads: usize,
        /// Wall-clock time of the whole execution.
        pub wall: Duration,
        /// Per-worker busy time (time spent executing cells), one entry per
        /// worker that folded at least one cell.
        pub worker_busy: Vec<Duration>,
    }

    impl SchedPerf {
        /// Cells executed per wall-clock second.
        #[must_use]
        pub fn cells_per_sec(&self) -> f64 {
            let secs = self.wall.as_secs_f64();
            if secs > 0.0 {
                self.cells as f64 / secs
            } else {
                0.0
            }
        }

        /// The busiest worker's share of total busy time, in `[1/workers,
        /// 1]`: `1/workers` is a perfect spread, `1` means one worker did
        /// everything.
        #[must_use]
        pub fn worst_worker_share(&self) -> f64 {
            let total: f64 = self.worker_busy.iter().map(Duration::as_secs_f64).sum();
            let worst = self
                .worker_busy
                .iter()
                .map(Duration::as_secs_f64)
                .fold(0.0, f64::max);
            if total > 0.0 {
                worst / total
            } else {
                0.0
            }
        }

        /// Busiest worker ÷ ideal equal share (`total / workers`), ≥ 1: the
        /// factor by which the critical-path worker exceeds a perfectly
        /// balanced schedule. `1.0` is optimal.
        #[must_use]
        pub fn imbalance_ratio(&self) -> f64 {
            if self.worker_busy.is_empty() {
                return 0.0;
            }
            self.worst_worker_share() * self.worker_busy.len() as f64
        }

        /// Prints the canonical one-line JSON record:
        /// `{"kind":"sched_perf","bench":…,"sweep":…,"mode":…,"cells":…,
        /// "threads":…,"wall_clock_ms":…,"cells_per_sec":…,
        /// "worst_worker_share":…,"imbalance_ratio":…}` — and appends it to
        /// the [`HISTORY_ENV`] file when configured. `mode` names the
        /// sharding strategy under measurement.
        pub fn emit(&self, bench: &str, sweep: &str, mode: &str) {
            let line = format!(
                "{{\"kind\":\"sched_perf\",\"bench\":\"{bench}\",\"sweep\":\"{sweep}\",\
                 \"mode\":\"{mode}\",\"cells\":{},\"threads\":{},\"wall_clock_ms\":{:.3},\
                 \"cells_per_sec\":{:.3},\"worst_worker_share\":{:.4},\
                 \"imbalance_ratio\":{:.4}}}",
                self.cells,
                self.threads,
                self.wall.as_secs_f64() * 1e3,
                self.cells_per_sec(),
                self.worst_worker_share(),
                self.imbalance_ratio(),
            );
            println!("{line}");
            append_history(&line);
        }
    }

    /// Result of one measurement.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Measurement {
        /// Mean time per iteration.
        pub mean: Duration,
        /// Fastest single iteration.
        pub min: Duration,
    }

    /// Times `f` over `iters` iterations (after one warm-up call), prints a
    /// `group/name  mean .. min ..` line, and returns the measurement.
    pub fn bench<T>(group: &str, name: &str, iters: u32, mut f: impl FnMut() -> T) -> Measurement {
        let iters = iters.max(1);
        std::hint::black_box(f());
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..iters {
            let start = Instant::now();
            std::hint::black_box(f());
            let elapsed = start.elapsed();
            total += elapsed;
            min = min.min(elapsed);
        }
        let m = Measurement {
            mean: total / iters,
            min,
        };
        println!(
            "{group}/{name}: mean {:.3} ms, min {:.3} ms over {iters} iters",
            m.mean.as_secs_f64() * 1e3,
            m.min.as_secs_f64() * 1e3,
        );
        m
    }

    #[cfg(test)]
    mod timing_tests {
        use super::escape_tag;

        #[test]
        fn tags_with_quotes_backslashes_and_controls_stay_valid_json() {
            assert_eq!(escape_tag("pr3"), "pr3");
            assert_eq!(escape_tag(r#"PR 3 "rerun""#), r#"PR 3 \"rerun\""#);
            assert_eq!(escape_tag(r"a\b"), r"a\\b");
            assert_eq!(escape_tag("a\nb"), "a\\u000ab");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysscale::experiments::motivation;

    #[test]
    fn formatters_produce_nonempty_tables() {
        let config = SocConfig::skylake_default();
        assert!(format_table1(&motivation::table1(&config)).contains("DRAM"));
        assert!(format_table2(&config).contains("TDP"));
        assert!(format_fig3b(&motivation::fig3b()).contains("display"));
        assert!(
            format_overheads(&sysscale::experiments::sensitivity::overheads())
                .contains("transition")
        );
    }

    #[test]
    fn matrix_perf_json_has_the_expected_fields() {
        let (perf, value) = timing::time_matrix("test", "demo", 8, 4, || 42);
        assert_eq!(value, 42);
        assert_eq!(perf.cells, 8);
        assert_eq!(perf.threads, 4);
        assert!(perf.cells_per_sec() > 0.0);
        let zero = timing::MatrixPerf {
            cells: 1,
            threads: 1,
            wall: std::time::Duration::ZERO,
        };
        assert_eq!(zero.cells_per_sec(), 0.0);
    }

    #[test]
    fn sweep_perf_json_has_the_expected_fields() {
        let (perf, value) = timing::time_sweep("test", "demo_sweep", 4, 64, 8, || 7);
        assert_eq!(value, 7);
        assert_eq!(perf.members, 4);
        assert_eq!(perf.cells, 64);
        assert_eq!(perf.threads, 8);
        assert!(perf.cells_per_sec() > 0.0);
        let zero = timing::SweepPerf {
            members: 1,
            cells: 1,
            threads: 1,
            wall: std::time::Duration::ZERO,
        };
        assert_eq!(zero.cells_per_sec(), 0.0);
    }

    #[test]
    fn sched_perf_balance_metrics_are_well_defined() {
        use std::time::Duration;
        // One worker does 7 of 10 seconds of busy time across 4 workers.
        let perf = timing::SchedPerf {
            cells: 200,
            threads: 4,
            wall: Duration::from_secs(8),
            worker_busy: vec![
                Duration::from_secs(7),
                Duration::from_secs(1),
                Duration::from_secs(1),
                Duration::from_secs(1),
            ],
        };
        assert!((perf.worst_worker_share() - 0.7).abs() < 1e-12);
        assert!((perf.imbalance_ratio() - 2.8).abs() < 1e-12);
        assert!(perf.cells_per_sec() > 0.0);

        // A perfect spread has share 1/workers and ratio 1.
        let even = timing::SchedPerf {
            cells: 8,
            threads: 2,
            wall: Duration::from_secs(1),
            worker_busy: vec![Duration::from_secs(1); 2],
        };
        assert!((even.worst_worker_share() - 0.5).abs() < 1e-12);
        assert!((even.imbalance_ratio() - 1.0).abs() < 1e-12);

        let zero = timing::SchedPerf {
            cells: 0,
            threads: 1,
            wall: Duration::ZERO,
            worker_busy: Vec::new(),
        };
        assert_eq!(zero.worst_worker_share(), 0.0);
        assert_eq!(zero.imbalance_ratio(), 0.0);
        assert_eq!(zero.cells_per_sec(), 0.0);
    }

    #[test]
    fn slice_perf_rates_are_well_defined() {
        let perf = timing::SlicePerf {
            cells: 4,
            threads: 2,
            slices: 1200,
            fixed_point_iters: 3000,
            wall: std::time::Duration::from_millis(100),
        };
        assert!((perf.slices_per_sec() - 12_000.0).abs() < 1e-6);
        assert!((perf.iters_per_slice() - 2.5).abs() < 1e-12);
        let zero = timing::SlicePerf {
            cells: 0,
            threads: 1,
            slices: 0,
            fixed_point_iters: 0,
            wall: std::time::Duration::ZERO,
        };
        assert_eq!(zero.slices_per_sec(), 0.0);
        assert_eq!(zero.iters_per_slice(), 0.0);
    }

    #[test]
    fn timing_harness_reports_plausible_numbers() {
        let m = timing::bench("test", "spin", 3, || {
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        assert!(m.mean >= std::time::Duration::from_millis(1));
        assert!(m.min <= m.mean);
    }
}
