//! Regenerates every table and figure of the SysScale evaluation.
//!
//! ```text
//! cargo run --release -p sysscale-bench --bin figures -- all
//! cargo run --release -p sysscale-bench --bin figures -- fig7 fig9
//! ```
//!
//! Available targets: `table1 table2 fig2a fig2b fig2c fig3a fig3b fig4 fig6
//! fig7 fig8 fig9 fig10 dram_sens overheads ablations all`.

use sysscale::experiments::{evaluation, motivation, predictor_study, sensitivity};
use sysscale::{calibrate, CalibrationConfig, DemandPredictor, SocConfig};
use sysscale_bench as fmt;
use sysscale_workloads::WorkloadGenerator;

fn predictor(config: &SocConfig, quick: bool) -> DemandPredictor {
    if quick {
        return DemandPredictor::skylake_default();
    }
    // Calibrate on a synthetic representative population (Sec. 4.2).
    let population = WorkloadGenerator::with_seed(2020).population(120);
    match calibrate(config, &population, &CalibrationConfig::default()) {
        Ok(outcome) => outcome.predictor(),
        Err(_) => DemandPredictor::skylake_default(),
    }
}

#[allow(clippy::too_many_lines)]
fn run(target: &str, config: &SocConfig, quick: bool) -> Result<(), Box<dyn std::error::Error>> {
    match target {
        "table1" => print!("{}", fmt::format_table1(&motivation::table1(config))),
        "table2" => print!("{}", fmt::format_table2(config)),
        "fig2a" => print!("{}", fmt::format_fig2a(&motivation::fig2a(config)?)),
        "fig2b" => {
            println!("Fig. 2(b) — bottleneck breakdown");
            for r in motivation::fig2b(config)? {
                println!(
                    "  {:<16} latency {:>5.1}%  bandwidth {:>5.1}%  non-memory {:>5.1}%",
                    r.workload,
                    r.latency_bound * 100.0,
                    r.bandwidth_bound * 100.0,
                    r.non_memory * 100.0
                );
            }
        }
        "fig2c" => {
            println!("Fig. 2(c) — memory bandwidth demand");
            for t in motivation::fig2c(config)? {
                println!(
                    "  {:<16} avg {:>6.2} GiB/s   peak {:>6.2} GiB/s",
                    t.workload, t.average_gib_s, t.peak_gib_s
                );
            }
        }
        "fig3a" => {
            println!("Fig. 3(a) — bandwidth demand over time (downsampled)");
            for t in motivation::fig3a(config)? {
                let step = (t.samples.len() / 12).max(1);
                let series: Vec<String> = t
                    .samples
                    .iter()
                    .step_by(step)
                    .map(|(_, b)| format!("{b:.1}"))
                    .collect();
                println!("  {:<16} [{}] GiB/s", t.workload, series.join(", "));
            }
        }
        "fig3b" => print!("{}", fmt::format_fig3b(&motivation::fig3b())),
        "fig4" => print!("{}", fmt::format_fig4(&motivation::fig4(config)?)),
        "fig6" => {
            let study = predictor_study::PredictorStudyConfig {
                workloads_per_panel: if quick { 30 } else { 180 },
                ..predictor_study::PredictorStudyConfig::default()
            };
            print!(
                "{}",
                fmt::format_fig6(&predictor_study::fig6(config, &study)?)
            );
        }
        "fig7" => {
            let p = predictor(config, quick);
            print!(
                "{}",
                fmt::format_speedup_figure(
                    "Fig. 7 — SPEC CPU2006 performance improvement",
                    &evaluation::fig7(config, &p)?
                )
            );
        }
        "fig8" => {
            let p = predictor(config, quick);
            print!(
                "{}",
                fmt::format_speedup_figure(
                    "Fig. 8 — graphics performance improvement",
                    &evaluation::fig8(config, &p)?
                )
            );
        }
        "fig9" => {
            let p = predictor(config, quick);
            print!("{}", fmt::format_fig9(&evaluation::fig9(config, &p)?));
        }
        "fig10" => {
            let p = predictor(config, quick);
            let tdps = [3.5, 4.5, 7.0, 15.0];
            print!("{}", fmt::format_fig10(&sensitivity::fig10(&p, &tdps)?));
        }
        "dram_sens" => {
            let p = predictor(config, quick);
            print!(
                "{}",
                fmt::format_dram_sensitivity(&sensitivity::dram_sensitivity(&p)?)
            );
        }
        "overheads" => print!("{}", fmt::format_overheads(&sensitivity::overheads())),
        "ablations" => {
            let p = predictor(config, quick);
            print!("{}", fmt::format_ablations(&sensitivity::ablations(&p)?));
        }
        other => return Err(format!("unknown figure target '{other}'").into()),
    }
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let targets: Vec<String> = args.into_iter().filter(|a| !a.starts_with("--")).collect();
    let all = [
        "table1",
        "table2",
        "fig2a",
        "fig2b",
        "fig2c",
        "fig3a",
        "fig3b",
        "fig4",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "dram_sens",
        "overheads",
        "ablations",
    ];
    let selected: Vec<&str> = if targets.is_empty() || targets.iter().any(|t| t == "all") {
        all.to_vec()
    } else {
        targets.iter().map(String::as_str).collect()
    };
    let config = SocConfig::skylake_default();
    for target in selected {
        run(target, &config, quick)?;
    }
    Ok(())
}
