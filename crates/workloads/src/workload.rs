//! Workload descriptors: phases, classes, and performance units.
//!
//! A workload is a sequence of *phases*. Each phase carries the demand
//! characteristics the SoC models consume (CPU interval-model parameters,
//! graphics per-frame work, C-state residency, best-effort IO activity) plus
//! a duration. This is the synthetic stand-in for SPEC CPU2006 / 3DMark /
//! battery-life content the paper runs on real hardware: the descriptors are
//! calibrated to the per-benchmark characteristics the paper reports
//! (memory-boundedness, bandwidth demand over time, frequency scalability,
//! idle residency).

use sysscale_compute::{CStateProfile, CpuPhaseDemand, GfxPhaseDemand};
use sysscale_iodev::{IoActivity, PeripheralConfig};
use sysscale_types::{SimError, SimResult, SimTime};

/// Class of a workload, used for reporting and for picking the right
/// performance metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadClass {
    /// Single-threaded CPU benchmark (SPEC CPU2006 style).
    CpuSingleThread,
    /// Multi-threaded CPU benchmark.
    CpuMultiThread,
    /// Graphics benchmark (3DMark style), scored in frames per second.
    Graphics,
    /// Battery-life scenario with fixed performance demands, scored by
    /// average power.
    BatteryLife,
    /// Microbenchmark (e.g. STREAM-like peak-bandwidth kernel).
    Micro,
}

impl WorkloadClass {
    /// Short name for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            WorkloadClass::CpuSingleThread => "cpu-1t",
            WorkloadClass::CpuMultiThread => "cpu-nt",
            WorkloadClass::Graphics => "graphics",
            WorkloadClass::BatteryLife => "battery",
            WorkloadClass::Micro => "micro",
        }
    }
}

/// The unit in which a workload's completed work is counted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PerfUnit {
    /// Instructions retired (CPU benchmarks).
    Instructions,
    /// Frames rendered (graphics benchmarks).
    Frames,
    /// Seconds of content played back / serviced (battery-life scenarios).
    ServicedSeconds,
}

/// One phase of a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadPhase {
    /// Duration of the phase.
    pub duration: SimTime,
    /// CPU demand during the phase.
    pub cpu: CpuPhaseDemand,
    /// Graphics demand during the phase.
    pub gfx: GfxPhaseDemand,
    /// Package C-state residency during the phase.
    pub cstates: CStateProfile,
    /// Best-effort IO activity during the phase.
    pub io: IoActivity,
}

impl WorkloadPhase {
    /// A purely CPU-driven phase that stays in C0.
    #[must_use]
    pub fn cpu_only(duration: SimTime, cpu: CpuPhaseDemand) -> Self {
        Self {
            duration,
            cpu,
            gfx: GfxPhaseDemand::idle(),
            cstates: CStateProfile::always_active(),
            io: IoActivity::Idle,
        }
    }

    /// Validates the phase.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the duration is not positive or
    /// a nested demand is invalid.
    pub fn validate(&self) -> SimResult<()> {
        if self.duration <= SimTime::ZERO {
            return Err(SimError::invalid_config("phase duration must be positive"));
        }
        self.cpu.validate()?;
        self.gfx.validate()?;
        Ok(())
    }
}

/// A complete workload.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Human-readable name (e.g. `470.lbm`, `3DMark06`, `video-playback`).
    pub name: String,
    /// Workload class.
    pub class: WorkloadClass,
    /// Performance unit of the score.
    pub perf_unit: PerfUnit,
    /// Phases executed in order (the sequence repeats if the simulation runs
    /// longer than the sum of phase durations).
    pub phases: Vec<WorkloadPhase>,
    /// Platform peripheral configuration while this workload runs.
    pub peripherals: PeripheralConfig,
}

impl Workload {
    /// Creates a workload after validating its phases.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if there are no phases or a phase
    /// is invalid.
    pub fn new(
        name: impl Into<String>,
        class: WorkloadClass,
        perf_unit: PerfUnit,
        phases: Vec<WorkloadPhase>,
        peripherals: PeripheralConfig,
    ) -> SimResult<Self> {
        if phases.is_empty() {
            return Err(SimError::invalid_config(
                "workload must have at least one phase",
            ));
        }
        for p in &phases {
            p.validate()?;
        }
        Ok(Self {
            name: name.into(),
            class,
            perf_unit,
            phases,
            peripherals,
        })
    }

    /// Sum of all phase durations (one iteration of the phase sequence).
    #[must_use]
    pub fn iteration_length(&self) -> SimTime {
        self.phases.iter().map(|p| p.duration).sum()
    }

    /// The phase active at simulated time `t`, wrapping around the phase
    /// sequence for runs longer than one iteration.
    #[must_use]
    pub fn phase_at(&self, t: SimTime) -> &WorkloadPhase {
        &self.phases[self.phase_index_at(t)]
    }

    /// Index of the phase active at simulated time `t` (same wraparound
    /// semantics as [`Workload::phase_at`]).
    ///
    /// The wrapped offset `t mod iteration_length` is compared against the
    /// *cumulative* phase end times (each the running sum of the durations
    /// so far), never against a repeatedly decremented remainder. Repeated
    /// subtraction accumulates one rounding error per phase, which on long
    /// runs could land a slice that starts exactly on a phase boundary in
    /// the neighbouring phase; the cumulative comparison keeps boundaries
    /// exact. [`crate::PhaseCursor`] implements the same contract in O(1)
    /// amortized time.
    #[must_use]
    pub fn phase_index_at(&self, t: SimTime) -> usize {
        let total = self.iteration_length();
        if total.is_zero() {
            return 0;
        }
        // IEEE-754 remainder is exact, so the wrapped offset itself carries
        // no error even after thousands of iterations.
        let wrapped = t.as_secs() % total.as_secs();
        let mut end = 0.0;
        for (i, phase) in self.phases.iter().enumerate() {
            end += phase.duration.as_secs();
            if wrapped < end {
                return i;
            }
        }
        // Unreachable for positive durations (wrapped < total == final end),
        // but keep the floating-point edge well-defined.
        self.phases.len() - 1
    }

    /// Average main-memory bandwidth demand *hint* across the phases (at a
    /// nominal 1.2 GHz CPU and unloaded memory), used for reporting the
    /// Fig. 2(c)/3(a)-style demand without running the full simulator.
    #[must_use]
    pub fn nominal_bandwidth_hint(&self) -> f64 {
        use sysscale_compute::CpuModel;
        use sysscale_types::Freq;
        let cpu = CpuModel::skylake_2core();
        let total = self.iteration_length().as_secs();
        if total == 0.0 {
            return 0.0;
        }
        self.phases
            .iter()
            .map(|p| {
                let r = cpu.evaluate(&p.cpu, Freq::from_ghz(1.2), SimTime::from_nanos(70.0), 1.0);
                let gfx = GfxBwHint::hint(&p.gfx);
                (r.bandwidth_demand.as_bytes_per_sec() + gfx) * p.duration.as_secs()
            })
            .sum::<f64>()
            / total
    }
}

/// Helper for the graphics part of the bandwidth hint.
struct GfxBwHint;

impl GfxBwHint {
    fn hint(gfx: &GfxPhaseDemand) -> f64 {
        use sysscale_compute::GfxModel;
        use sysscale_types::Freq;
        GfxModel::new()
            .desired_bandwidth(gfx, Freq::from_mhz(600.0))
            .as_bytes_per_sec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase(duration_ms: f64, mpki: f64) -> WorkloadPhase {
        WorkloadPhase::cpu_only(
            SimTime::from_millis(duration_ms),
            CpuPhaseDemand {
                base_cpi: 1.0,
                mpki,
                blocking_fraction: 0.3,
                active_threads: 1,
            },
        )
    }

    fn workload(phases: Vec<WorkloadPhase>) -> Workload {
        Workload::new(
            "test",
            WorkloadClass::CpuSingleThread,
            PerfUnit::Instructions,
            phases,
            PeripheralConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn phase_lookup_walks_and_wraps() {
        let w = workload(vec![phase(10.0, 1.0), phase(20.0, 5.0), phase(30.0, 20.0)]);
        assert!((w.iteration_length().as_millis() - 60.0).abs() < 1e-9);
        assert_eq!(w.phase_at(SimTime::from_millis(5.0)).cpu.mpki, 1.0);
        assert_eq!(w.phase_at(SimTime::from_millis(15.0)).cpu.mpki, 5.0);
        assert_eq!(w.phase_at(SimTime::from_millis(45.0)).cpu.mpki, 20.0);
        // Wraps around after one iteration.
        assert_eq!(w.phase_at(SimTime::from_millis(65.0)).cpu.mpki, 1.0);
        assert_eq!(w.phase_at(SimTime::from_millis(105.0)).cpu.mpki, 20.0);
    }

    #[test]
    fn phase_boundaries_are_exact_even_where_subtraction_drifts() {
        // Regression test for the floating-point wraparound drift: with
        // phases of 10/20/30 ms, the binary value of 0.01 + 0.02 s is
        // strictly below the literal 0.03 s, so the former subtraction-based
        // lookup (`remaining -= duration`) accumulated one rounding error
        // per phase and classified the exact start of phase 2 — and every
        // wrapped copy of it — as still belonging to phase 1.
        let w = workload(vec![phase(10.0, 1.0), phase(20.0, 5.0), phase(30.0, 20.0)]);
        let total = w.iteration_length().as_secs();
        let boundary = 0.01_f64 + 0.02_f64; // cumulative end of phase 1
                                            // The drift the old algorithm exhibited: subtracting the first
                                            // phase's duration from the boundary is inexact, so the comparison
                                            // against the second duration misfires.
        assert!(
            boundary - 0.01 < 0.02,
            "this test exercises the inexact subtraction"
        );

        // A slice timestamp produced exactly like the simulator's
        // (slice_idx × slice_length) lands on that boundary at 150 ms into
        // the run — after wrapping once through the 60 ms iteration the
        // exact remainder is bit-equal to the cumulative boundary. The old
        // lookup returned phase 1 here.
        let t150 = SimTime::from_secs(1500.0 * 0.000_1);
        assert_eq!((t150.as_secs() % total).to_bits(), boundary.to_bits());
        assert_eq!(w.phase_index_at(t150), 2, "exact boundary starts phase 2");

        // First iteration: exactly on the boundary belongs to phase 2, one
        // ulp below still to phase 1.
        assert_eq!(w.phase_index_at(SimTime::from_secs(boundary)), 2);
        let just_below = f64::from_bits(boundary.to_bits() - 1);
        assert_eq!(w.phase_index_at(SimTime::from_secs(just_below)), 1);

        // Interior timestamps are untouched by the fix.
        assert_eq!(w.phase_index_at(SimTime::from_millis(5.0)), 0);
        assert_eq!(w.phase_index_at(SimTime::from_millis(15.0)), 1);
        assert_eq!(w.phase_index_at(SimTime::from_millis(45.0)), 2);
        assert_eq!(w.phase_index_at(SimTime::from_millis(65.0)), 0);
    }

    #[test]
    fn workload_validation() {
        assert!(Workload::new(
            "empty",
            WorkloadClass::Micro,
            PerfUnit::Instructions,
            vec![],
            PeripheralConfig::default()
        )
        .is_err());
        let mut bad = phase(10.0, 1.0);
        bad.duration = SimTime::ZERO;
        assert!(Workload::new(
            "bad",
            WorkloadClass::Micro,
            PerfUnit::Instructions,
            vec![bad],
            PeripheralConfig::default()
        )
        .is_err());
    }

    #[test]
    fn bandwidth_hint_orders_phases_by_intensity() {
        let light = workload(vec![phase(10.0, 0.5)]);
        let heavy = workload(vec![phase(10.0, 25.0)]);
        assert!(heavy.nominal_bandwidth_hint() > light.nominal_bandwidth_hint());
        assert!(light.nominal_bandwidth_hint() > 0.0);
    }

    #[test]
    fn class_names_are_unique() {
        let names = [
            WorkloadClass::CpuSingleThread.name(),
            WorkloadClass::CpuMultiThread.name(),
            WorkloadClass::Graphics.name(),
            WorkloadClass::BatteryLife.name(),
            WorkloadClass::Micro.name(),
        ];
        let mut sorted = names.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len());
    }
}
