//! # sysscale-workloads
//!
//! Workload descriptors and generators for the SysScale simulator: a SPEC
//! CPU2006-like suite, 3DMark-like graphics scenes, the four battery-life
//! scenarios of the evaluation, STREAM-like microbenchmarks, and a synthetic
//! population generator for the predictor-accuracy study (Fig. 6) and
//! threshold calibration.
//!
//! ## Example
//!
//! ```
//! use sysscale_workloads::{spec_workload, battery_life_suite};
//!
//! let lbm = spec_workload("lbm").expect("470.lbm is part of the suite");
//! let perl = spec_workload("perlbench").unwrap();
//! // lbm is bandwidth bound; perlbench is not (Fig. 2(c)).
//! assert!(lbm.nominal_bandwidth_hint() > 5.0 * perl.nominal_bandwidth_hint());
//! assert_eq!(battery_life_suite().len(), 4);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod battery;
mod generator;
mod graphics;
mod micro;
mod schedule;
mod spec;
mod workload;

pub use battery::{battery_life_suite, battery_workload, BATTERY_LIFE_NAMES};
pub use generator::{
    class_buckets, ClassBucketSource, GeneratorConfig, PopulationSource, WorkloadGenerator,
    WorkloadSource,
};
pub use graphics::{
    build_graphics_workload, graphics_suite, graphics_workload, GraphicsDescriptor,
    GRAPHICS_BENCHMARKS,
};
pub use micro::{idle_display_on, stream_peak_bandwidth};
pub use schedule::{PhaseCursor, PhaseSchedule, ResolvedPhase};
pub use spec::{
    build_workload, build_workload_with_threads, spec_cpu2006_rate_suite, spec_cpu2006_suite,
    spec_workload, PhasePattern, SpecDescriptor, SPEC_CPU2006,
};
pub use workload::{PerfUnit, Workload, WorkloadClass, WorkloadPhase};
