//! Precompiled phase schedules for the simulator's slice loop.
//!
//! [`Workload::phase_at`] re-sums the iteration length and linearly scans
//! the phase list on every call, and the simulator additionally re-derived
//! half a dozen scalars from the returned phase on every slice. For a run of
//! hundreds of thousands of slices that is pure overhead: the phase list is
//! immutable for the whole run.
//!
//! [`PhaseSchedule::compile`] resolves every phase **once** into a
//! [`ResolvedPhase`] — the phase demands plus every derived scalar the slice
//! loop consumes (C-state fractions, leakage, activity flags, and the
//! peripheral-scaled IO/isochronous bandwidth demands) — and stores the
//! cumulative phase end times. [`PhaseCursor`] then answers "which phase is
//! active at `t`?" in O(1) amortized time for the monotonically advancing
//! timestamps the slice loop produces, falling back to a forward scan only
//! on wraparound.
//!
//! Lookup semantics are identical (bit for bit) to the fixed
//! [`Workload::phase_index_at`]: the wrapped offset `t mod iteration_length`
//! is computed with the exact IEEE-754 remainder and compared against
//! cumulative phase end times, so phase boundaries stay exact no matter how
//! many iterations the run wraps through.

use std::sync::Arc;

use sysscale_compute::{CpuPhaseDemand, GfxPhaseDemand};
use sysscale_types::{Bandwidth, SimTime};

use crate::workload::Workload;

/// One phase of a [`Workload`], fully resolved for the slice loop: the raw
/// demands plus every derived scalar the simulator would otherwise recompute
/// per slice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResolvedPhase {
    /// Duration of the phase.
    pub duration: SimTime,
    /// CPU demand during the phase.
    pub cpu: CpuPhaseDemand,
    /// Graphics demand during the phase.
    pub gfx: GfxPhaseDemand,
    /// C0 residency ([`CStateProfile::active_fraction`]).
    ///
    /// [`CStateProfile::active_fraction`]: sysscale_compute::CStateProfile::active_fraction
    pub active_fraction: f64,
    /// Fraction of time DRAM is out of self-refresh
    /// ([`CStateProfile::dram_active_fraction`]).
    ///
    /// [`CStateProfile::dram_active_fraction`]: sysscale_compute::CStateProfile::dram_active_fraction
    pub dram_active_fraction: f64,
    /// Average powered-on fraction of the uncore
    /// ([`CStateProfile::uncore_activity`]).
    ///
    /// [`CStateProfile::uncore_activity`]: sysscale_compute::CStateProfile::uncore_activity
    pub uncore_activity: f64,
    /// Average compute-leakage fraction
    /// ([`CStateProfile::compute_leakage_fraction`]).
    ///
    /// [`CStateProfile::compute_leakage_fraction`]: sysscale_compute::CStateProfile::compute_leakage_fraction
    pub compute_leakage_fraction: f64,
    /// `true` if any CPU thread executes during the phase.
    pub cpu_active: bool,
    /// `true` if the graphics engine renders during the phase.
    pub gfx_active: bool,
    /// Isochronous (display + ISP) bandwidth demand of the slice: the
    /// workload's static peripheral demand scaled by the DRAM-active
    /// fraction.
    pub iso_demand: Bandwidth,
    /// Best-effort IO bandwidth demand of the slice: the larger of the
    /// static peripheral demand and the phase's own IO activity, scaled by
    /// the DRAM-active fraction.
    pub io_demand: Bandwidth,
    /// Cumulative end time of the phase within one iteration, in seconds
    /// (the running sum of durations up to and including this phase).
    pub end_secs: f64,
}

/// An immutable, pre-resolved view of a [`Workload`]'s phase sequence,
/// shared behind an [`Arc`] so cursors are cheap to create and to move
/// across threads.
///
/// Compile once per run ([`PhaseSchedule::compile`]), then look phases up
/// through a [`PhaseCursor`] (amortized O(1)) or positionally through
/// [`PhaseSchedule::index_at`] / [`PhaseSchedule::phase`].
#[derive(Debug, Clone)]
pub struct PhaseSchedule {
    phases: Arc<[ResolvedPhase]>,
    iteration_secs: f64,
}

impl PhaseSchedule {
    /// Resolves every phase of `workload` into the flat, derived form the
    /// slice loop consumes.
    #[must_use]
    pub fn compile(workload: &Workload) -> Self {
        let static_iso = workload.peripherals.isochronous_demand();
        let static_io = workload.peripherals.best_effort_demand();
        let mut end = 0.0f64;
        let phases: Arc<[ResolvedPhase]> = workload
            .phases
            .iter()
            .map(|p| {
                end += p.duration.as_secs();
                let dram_active = p.cstates.dram_active_fraction();
                ResolvedPhase {
                    duration: p.duration,
                    cpu: p.cpu,
                    gfx: p.gfx,
                    active_fraction: p.cstates.active_fraction(),
                    dram_active_fraction: dram_active,
                    uncore_activity: p.cstates.uncore_activity(),
                    compute_leakage_fraction: p.cstates.compute_leakage_fraction(),
                    cpu_active: p.cpu.active_threads > 0,
                    gfx_active: !p.gfx.is_idle(),
                    iso_demand: static_iso * dram_active,
                    io_demand: static_io.max(p.io.bandwidth_demand()) * dram_active,
                    end_secs: end,
                }
            })
            .collect();
        Self {
            phases,
            iteration_secs: end,
        }
    }

    /// Number of phases.
    #[must_use]
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// `true` if the schedule has no phases (only possible for a
    /// hand-constructed empty workload; [`Workload::new`] rejects those).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// Sum of all phase durations (one iteration of the sequence).
    #[must_use]
    pub fn iteration_length(&self) -> SimTime {
        SimTime::from_secs(self.iteration_secs)
    }

    /// The resolved phase at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[must_use]
    pub fn phase(&self, index: usize) -> &ResolvedPhase {
        &self.phases[index]
    }

    /// Index of the phase active at time `t`, wrapping around the sequence.
    /// Stateless O(n) lookup, bit-identical to
    /// [`Workload::phase_index_at`]; the slice loop uses a [`PhaseCursor`]
    /// instead.
    #[must_use]
    pub fn index_at(&self, t: SimTime) -> usize {
        if self.iteration_secs == 0.0 {
            return 0;
        }
        let wrapped = t.as_secs() % self.iteration_secs;
        self.phases
            .iter()
            .position(|p| wrapped < p.end_secs)
            .unwrap_or(self.phases.len().saturating_sub(1))
    }

    /// A deterministic, structural **cost estimate** for simulating this
    /// schedule over `horizon`: the number of 1 ms slices times a
    /// conservative iterations-per-slice estimate, plus a demand-transition
    /// term — the quantity sweep schedulers weight cells by.
    ///
    /// The estimate is derived *purely* from the resolved phase structure —
    /// no timing, no sampling — so it is bit-stable across processes and
    /// runs, and sharding decisions built on it keep the executor's
    /// determinism contract. It mirrors what the slice loop actually pays
    /// (`SliceLoopStats`): every slice runs the CPU↔memory-latency fixed
    /// point, which converges after one iteration when the phase generates
    /// no memory traffic, and approaches the 4-iteration cap as the phase's
    /// traffic demand saturates the memory service; every phase boundary
    /// additionally forces the fixed point to re-converge. The absolute
    /// value is in "estimated fixed-point iterations" and only relative
    /// magnitudes matter: a cell of cost 200 is expected to take ~2× the
    /// wall clock of a cost-100 cell.
    #[must_use]
    pub fn estimated_cost(&self, horizon: SimTime) -> u64 {
        /// MPKI at which a phase's CPU traffic is treated as saturating the
        /// memory service (the top of the SPEC-like suite's range); the
        /// per-slice estimate approaches the fixed-point cap there.
        const MPKI_SATURATION: f64 = 30.0;
        /// Extra fixed-point iterations charged per phase transition
        /// crossed within the horizon (the re-convergence slices).
        const TRANSITION_COST: f64 = 2.0;

        let slices = (horizon.as_secs() * 1e3).ceil().max(1.0);
        if self.phases.is_empty() || self.iteration_secs <= 0.0 {
            return slices as u64;
        }
        // Duration-weighted iterations-per-slice over one iteration of the
        // phase sequence (the slice loop wraps through it uniformly).
        let mut per_slice_avg = 0.0f64;
        for p in self.phases.iter() {
            let weight = p.duration.as_secs() / self.iteration_secs;
            let mut per_slice = 1.0;
            if p.cpu_active || p.gfx_active {
                // An active phase pays at least one extra probe/serve
                // pair, and memory-intensive phases approach the cap:
                // queueing latency keeps moving while demand is a large
                // fraction of service capacity. MPKI is the structural
                // intensity proxy for CPU traffic; a rendering graphics
                // engine contributes its own stream.
                per_slice += 1.0;
                let mut pressure = p.cpu.mpki / MPKI_SATURATION;
                if p.gfx_active {
                    pressure += 0.5;
                }
                per_slice += 2.0 * pressure.min(1.0);
            }
            per_slice_avg += weight * per_slice;
        }
        let transitions = self.phases.len() as f64 * (horizon.as_secs() / self.iteration_secs);
        let cost = slices * per_slice_avg + TRANSITION_COST * transitions;
        cost.ceil().max(1.0) as u64
    }

    /// Creates a cursor positioned at the first phase.
    #[must_use]
    pub fn cursor(&self) -> PhaseCursor {
        PhaseCursor {
            phases: Arc::clone(&self.phases),
            iteration_secs: self.iteration_secs,
            idx: 0,
        }
    }
}

/// A stateful lookup cursor over a [`PhaseSchedule`].
///
/// [`PhaseCursor::index_at`] returns exactly what
/// [`PhaseSchedule::index_at`] (and [`Workload::phase_index_at`]) would, but
/// starts the boundary scan at the phase found by the previous call. For
/// the monotonically advancing timestamps of the slice loop each call
/// advances at most one phase forward per phase actually crossed —
/// amortized O(1) with an O(n) rescan only when the wrapped offset jumps
/// backwards (iteration wraparound or a non-monotonic probe).
#[derive(Debug, Clone)]
pub struct PhaseCursor {
    phases: Arc<[ResolvedPhase]>,
    iteration_secs: f64,
    idx: usize,
}

impl PhaseCursor {
    /// Index of the phase active at time `t`.
    pub fn index_at(&mut self, t: SimTime) -> usize {
        if self.iteration_secs == 0.0 || self.phases.is_empty() {
            return 0;
        }
        let wrapped = t.as_secs() % self.iteration_secs;
        // A wrapped offset before the current phase's start means the time
        // wrapped around (or moved backwards): restart the scan.
        let start = if self.idx == 0 {
            0.0
        } else {
            self.phases[self.idx - 1].end_secs
        };
        if wrapped < start {
            self.idx = 0;
        }
        // Advance to the first phase whose cumulative end lies beyond the
        // wrapped offset — the same "first `end` with `wrapped < end`" rule
        // as the stateless lookup, so the result is bit-identical.
        while wrapped >= self.phases[self.idx].end_secs {
            if self.idx + 1 == self.phases.len() {
                break; // floating-point edge: wrapped == iteration length
            }
            self.idx += 1;
        }
        self.idx
    }

    /// The resolved phase active at time `t`.
    pub fn phase_at(&mut self, t: SimTime) -> &ResolvedPhase {
        let idx = self.index_at(t);
        &self.phases[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{PerfUnit, WorkloadClass, WorkloadPhase};
    use sysscale_compute::CpuPhaseDemand;
    use sysscale_iodev::PeripheralConfig;
    use sysscale_types::rng::SplitMix64;

    fn phase_ms(duration_ms: f64, mpki: f64) -> WorkloadPhase {
        WorkloadPhase::cpu_only(
            SimTime::from_millis(duration_ms),
            CpuPhaseDemand {
                base_cpi: 1.0,
                mpki,
                blocking_fraction: 0.3,
                active_threads: 1,
            },
        )
    }

    fn workload(phases: Vec<WorkloadPhase>) -> Workload {
        Workload::new(
            "schedule-test",
            WorkloadClass::CpuSingleThread,
            PerfUnit::Instructions,
            phases,
            PeripheralConfig::single_hd_display(),
        )
        .unwrap()
    }

    #[test]
    fn compile_resolves_durations_demands_and_derived_scalars() {
        let w = workload(vec![phase_ms(10.0, 1.0), phase_ms(20.0, 5.0)]);
        let s = PhaseSchedule::compile(&w);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.iteration_length(), w.iteration_length());
        let p0 = s.phase(0);
        assert_eq!(p0.cpu.mpki, 1.0);
        assert_eq!(p0.active_fraction, 1.0);
        assert_eq!(p0.dram_active_fraction, 1.0);
        assert_eq!(p0.uncore_activity, 1.0);
        assert_eq!(p0.compute_leakage_fraction, 1.0);
        assert!(p0.cpu_active);
        assert!(!p0.gfx_active);
        // Peripheral-derived demands match the simulator's per-slice math.
        let iso = w.peripherals.isochronous_demand();
        assert_eq!(p0.iso_demand, iso * p0.dram_active_fraction);
        assert_eq!(
            p0.io_demand,
            w.peripherals.best_effort_demand() * p0.dram_active_fraction
        );
        // Cumulative ends accumulate in order.
        assert_eq!(p0.end_secs, 0.01);
        assert_eq!(s.phase(1).end_secs, 0.01 + 0.02);
    }

    #[test]
    fn estimated_cost_scales_with_horizon_and_memory_intensity() {
        let light = workload(vec![phase_ms(10.0, 0.5)]);
        let heavy = workload(vec![phase_ms(10.0, 25.0)]);
        let ls = PhaseSchedule::compile(&light);
        let hs = PhaseSchedule::compile(&heavy);

        // Cost is (roughly) linear in the horizon: a 10x longer run costs
        // ~10x more.
        let short = ls.estimated_cost(SimTime::from_millis(300.0));
        let long = ls.estimated_cost(SimTime::from_millis(3000.0));
        assert!(long >= 9 * short && long <= 11 * short, "{short} vs {long}");

        // Memory-intensive phases cost more per slice than light ones, and
        // both stay within [1, 4] iterations per slice.
        let h = hs.estimated_cost(SimTime::from_millis(300.0));
        let l = ls.estimated_cost(SimTime::from_millis(300.0));
        assert!(h > l, "heavy {h} must out-cost light {l}");
        assert!(l >= 300, "at least one iteration per slice: {l}");
        assert!(h <= 4 * 300 + 300, "bounded by the cap: {h}");
    }

    #[test]
    fn estimated_cost_is_deterministic_and_positive() {
        let mut rng = SplitMix64::new(0xC057);
        for _ in 0..100 {
            let n = 1 + (rng.next_u64() % 8) as usize;
            let phases: Vec<WorkloadPhase> = (0..n)
                .map(|_| phase_ms(rng.gen_range(0.5, 40.0), rng.gen_range(0.0, 30.0)))
                .collect();
            let s = PhaseSchedule::compile(&workload(phases));
            let horizon = SimTime::from_millis(rng.gen_range(1.0, 2000.0));
            let a = s.estimated_cost(horizon);
            let b = s.estimated_cost(horizon);
            assert_eq!(a, b, "cost must be a pure function of the schedule");
            assert!(a >= 1);
        }
    }

    #[test]
    fn cursor_walks_and_wraps_like_the_stateless_lookup() {
        let w = workload(vec![
            phase_ms(10.0, 1.0),
            phase_ms(20.0, 5.0),
            phase_ms(30.0, 20.0),
        ]);
        let s = PhaseSchedule::compile(&w);
        let mut c = s.cursor();
        for (ms, want) in [
            (5.0, 0),
            (15.0, 1),
            (45.0, 2),
            (65.0, 0),  // wraparound
            (105.0, 2), // second iteration
            (125.0, 0), // wrap again
        ] {
            let t = SimTime::from_millis(ms);
            assert_eq!(c.index_at(t), want, "t={ms} ms");
            assert_eq!(s.index_at(t), want, "stateless t={ms} ms");
            assert_eq!(w.phase_index_at(t), want, "workload t={ms} ms");
        }
    }

    #[test]
    fn cursor_matches_phase_index_at_on_randomized_workloads() {
        // Property test: for randomized workloads (1–16 phases, random
        // durations) the cursor agrees with `Workload::phase_index_at` on
        // 10k sequential (slice-loop-style, multi-iteration wraparound) and
        // 10k random (non-monotonic) timestamps.
        let mut rng = SplitMix64::new(0x5ca1_ab1e);
        for case in 0..40 {
            let n_phases = 1 + (rng.next_u64() % 16) as usize;
            let phases: Vec<WorkloadPhase> = (0..n_phases)
                .map(|i| phase_ms(rng.gen_range(0.3, 45.0), i as f64))
                .collect();
            let w = workload(phases);
            let s = PhaseSchedule::compile(&w);
            let total = s.iteration_length().as_secs();

            // Sequential timestamps: 1 ms slices crossing the iteration
            // several times over.
            let mut c = s.cursor();
            let slice = 0.001;
            let n = ((total / slice) as usize * 3 + 7).min(10_000);
            for k in 0..n {
                let t = SimTime::from_secs(k as f64 * slice);
                assert_eq!(
                    c.index_at(t),
                    w.phase_index_at(t),
                    "case {case}: sequential t={t:?}"
                );
            }

            // Random timestamps, including far beyond one iteration.
            let mut c = s.cursor();
            for probe in 0..10_000 / 40 {
                let t = SimTime::from_secs(rng.gen_range(0.0, total * 20.0));
                assert_eq!(
                    c.index_at(t),
                    w.phase_index_at(t),
                    "case {case} probe {probe}: random t={t:?}"
                );
                assert_eq!(s.index_at(t), w.phase_index_at(t));
            }

            // Exact cumulative boundaries, wrapped through many iterations.
            let mut c = s.cursor();
            for i in 0..s.len() {
                let end = s.phase(i).end_secs;
                for k in [0u32, 1, 13] {
                    let t = SimTime::from_secs(f64::from(k) * total + end);
                    assert_eq!(
                        c.index_at(t),
                        w.phase_index_at(t),
                        "case {case}: boundary {i} k={k}"
                    );
                }
            }
        }
    }
}
