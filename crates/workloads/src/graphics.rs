//! Graphics (3DMark-like) workload descriptors.
//!
//! The three 3DMark variants of the evaluation (3DMark06, 3DMark11, 3DMark
//! Vantage — Sec. 7.2) are modelled as uncapped frame-rendering workloads
//! with different per-frame engine work and memory traffic. While a graphics
//! workload runs, the CPU cores only feed the engine (low activity at the
//! most efficient frequency), which is why the PBM gives the graphics engine
//! 80–90 % of the compute budget.

use sysscale_compute::{CpuPhaseDemand, GfxPhaseDemand};
use sysscale_iodev::PeripheralConfig;
use sysscale_types::SimTime;

use crate::workload::{PerfUnit, Workload, WorkloadClass, WorkloadPhase};

/// Descriptor of one graphics benchmark scene.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphicsDescriptor {
    /// Benchmark name.
    pub name: &'static str,
    /// Engine cycles of work per frame.
    pub cycles_per_frame: f64,
    /// Main-memory bytes per frame.
    pub bytes_per_frame: f64,
    /// CPU misses per kilo-instruction of the driver/feeding thread.
    pub cpu_mpki: f64,
}

/// The three 3DMark-like scenes of the evaluation.
pub const GRAPHICS_BENCHMARKS: &[GraphicsDescriptor] = &[
    GraphicsDescriptor {
        name: "3DMark06",
        cycles_per_frame: 9.0e6,
        bytes_per_frame: 75.0e6,
        cpu_mpki: 2.0,
    },
    GraphicsDescriptor {
        name: "3DMark11",
        cycles_per_frame: 22.0e6,
        bytes_per_frame: 200.0e6,
        cpu_mpki: 1.5,
    },
    GraphicsDescriptor {
        name: "3DMarkVantage",
        cycles_per_frame: 14.0e6,
        bytes_per_frame: 115.0e6,
        cpu_mpki: 1.8,
    },
];

/// Builds the workload for one graphics descriptor.
#[must_use]
pub fn build_graphics_workload(desc: &GraphicsDescriptor) -> Workload {
    let phase = WorkloadPhase {
        duration: SimTime::from_millis(2_000.0),
        cpu: CpuPhaseDemand {
            base_cpi: 1.0,
            mpki: desc.cpu_mpki,
            blocking_fraction: 0.4,
            active_threads: 1,
        },
        gfx: GfxPhaseDemand {
            cycles_per_frame: desc.cycles_per_frame,
            bytes_per_frame: desc.bytes_per_frame,
            target_fps: None,
        },
        cstates: sysscale_compute::CStateProfile::always_active(),
        io: sysscale_iodev::IoActivity::Idle,
    };
    Workload::new(
        desc.name,
        WorkloadClass::Graphics,
        PerfUnit::Frames,
        vec![phase],
        PeripheralConfig::single_hd_display(),
    )
    .expect("static descriptors are well formed")
}

/// The full graphics suite.
#[must_use]
pub fn graphics_suite() -> Vec<Workload> {
    GRAPHICS_BENCHMARKS
        .iter()
        .map(build_graphics_workload)
        .collect()
}

/// Looks a graphics benchmark up by name (case insensitive).
#[must_use]
pub fn graphics_workload(name: &str) -> Option<Workload> {
    GRAPHICS_BENCHMARKS
        .iter()
        .find(|d| d.name.eq_ignore_ascii_case(name))
        .map(build_graphics_workload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysscale_compute::GfxModel;
    use sysscale_types::{Bandwidth, Freq};

    #[test]
    fn suite_has_the_three_3dmark_variants() {
        let suite = graphics_suite();
        assert_eq!(suite.len(), 3);
        assert!(graphics_workload("3dmark06").is_some());
        assert!(graphics_workload("3DMark11").is_some());
        assert!(graphics_workload("3dmarkvantage").is_some());
        assert!(graphics_workload("gfxbench").is_none());
        assert!(suite.iter().all(|w| w.class == WorkloadClass::Graphics));
        assert!(suite.iter().all(|w| w.perf_unit == PerfUnit::Frames));
    }

    #[test]
    fn scenes_are_gfx_frequency_scalable_with_ample_bandwidth() {
        // Graphics performance is highly scalable with engine frequency
        // (Sec. 7.2) when bandwidth is not the bottleneck.
        let gfx = GfxModel::new();
        for w in graphics_suite() {
            let scene = &w.phases[0].gfx;
            let slow = gfx.evaluate(scene, Freq::from_mhz(500.0), Bandwidth::from_gib_s(20.0));
            let fast = gfx.evaluate(scene, Freq::from_mhz(750.0), Bandwidth::from_gib_s(20.0));
            let speedup = fast.fps / slow.fps;
            assert!((speedup - 1.5).abs() < 0.05, "{}: {speedup}", w.name);
        }
    }

    #[test]
    fn scenes_demand_significant_memory_bandwidth() {
        // Fig. 3(b): graphics configurations demand a sizeable share of the
        // DRAM peak, so scaling the uncore down blindly would hurt them.
        for w in graphics_suite() {
            let hint = w.nominal_bandwidth_hint() / 25.6e9;
            assert!(hint > 0.1, "{}: fraction {hint}", w.name);
        }
    }

    #[test]
    fn heavier_scenes_run_slower() {
        let gfx = GfxModel::new();
        let light = graphics_workload("3DMark06").unwrap();
        let heavy = graphics_workload("3DMark11").unwrap();
        let f = Freq::from_mhz(600.0);
        let bw = Bandwidth::from_gib_s(20.0);
        let fps_light = gfx.evaluate(&light.phases[0].gfx, f, bw).fps;
        let fps_heavy = gfx.evaluate(&heavy.phases[0].gfx, f, bw).fps;
        assert!(fps_light > fps_heavy);
    }
}
