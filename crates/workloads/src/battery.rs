//! Battery-life workload descriptors.
//!
//! Battery-life workloads (Sec. 7.3) have two defining characteristics: their
//! performance demand is *fixed* (e.g. decode and display 60 frames per
//! second, no more), and they spend most of their time in package idle
//! states — C0 residency between 10 % and 40 %, with DRAM active only in C0
//! and C2. The metric is average power, not throughput.

use sysscale_compute::{CState, CStateProfile, CpuPhaseDemand, GfxPhaseDemand};
use sysscale_iodev::{IoActivity, IspMode, PeripheralConfig};
use sysscale_types::SimTime;

use crate::workload::{PerfUnit, Workload, WorkloadClass, WorkloadPhase};

/// Names of the four battery-life scenarios in evaluation order (Fig. 9).
pub const BATTERY_LIFE_NAMES: [&str; 4] = [
    "web-browsing",
    "light-gaming",
    "video-conferencing",
    "video-playback",
];

fn light_cpu(mpki: f64, threads: u32) -> CpuPhaseDemand {
    CpuPhaseDemand {
        base_cpi: 1.1,
        mpki,
        blocking_fraction: 0.5,
        active_threads: threads,
    }
}

fn capped_gfx(cycles_per_frame: f64, bytes_per_frame: f64, fps: f64) -> GfxPhaseDemand {
    GfxPhaseDemand {
        cycles_per_frame,
        bytes_per_frame,
        target_fps: Some(fps),
    }
}

/// Builds one battery-life workload by name.
///
/// Returns `None` for unknown names; see [`BATTERY_LIFE_NAMES`].
#[must_use]
pub fn battery_workload(name: &str) -> Option<Workload> {
    let (phase, peripherals) = match name {
        "web-browsing" => {
            let cstates = CStateProfile::new(vec![
                (CState::C0, 0.20),
                (CState::C2, 0.10),
                (CState::C6, 0.20),
                (CState::C8, 0.50),
            ])
            .expect("static profile");
            let phase = WorkloadPhase {
                duration: SimTime::from_millis(2_000.0),
                cpu: light_cpu(3.0, 2),
                gfx: capped_gfx(1.2e6, 25.0e6, 60.0),
                cstates,
                io: IoActivity::Light,
            };
            (phase, PeripheralConfig::single_hd_display())
        }
        "light-gaming" => {
            let cstates = CStateProfile::new(vec![
                (CState::C0, 0.40),
                (CState::C2, 0.10),
                (CState::C6, 0.20),
                (CState::C8, 0.30),
            ])
            .expect("static profile");
            let phase = WorkloadPhase {
                duration: SimTime::from_millis(2_000.0),
                cpu: light_cpu(2.0, 2),
                gfx: capped_gfx(5.0e6, 60.0e6, 30.0),
                cstates,
                io: IoActivity::Light,
            };
            (phase, PeripheralConfig::single_hd_display())
        }
        "video-conferencing" => {
            let cstates = CStateProfile::new(vec![
                (CState::C0, 0.30),
                (CState::C2, 0.10),
                (CState::C6, 0.20),
                (CState::C8, 0.40),
            ])
            .expect("static profile");
            let mut peripherals = PeripheralConfig::single_hd_display();
            peripherals.isp.set_mode(IspMode::Capture720p30);
            peripherals.io_activity = IoActivity::Light;
            let phase = WorkloadPhase {
                duration: SimTime::from_millis(2_000.0),
                cpu: light_cpu(2.5, 2),
                gfx: capped_gfx(2.0e6, 35.0e6, 30.0),
                cstates,
                io: IoActivity::Light,
            };
            (phase, peripherals)
        }
        "video-playback" => {
            // Sec. 7.3: C0 10 %, C2 5 %, C8 85 %.
            let cstates = CStateProfile::video_playback();
            let phase = WorkloadPhase {
                duration: SimTime::from_millis(2_000.0),
                cpu: light_cpu(1.5, 1),
                gfx: capped_gfx(2.5e6, 45.0e6, 60.0),
                cstates,
                io: IoActivity::Light,
            };
            (phase, PeripheralConfig::single_hd_display())
        }
        _ => return None,
    };
    Some(
        Workload::new(
            name,
            WorkloadClass::BatteryLife,
            PerfUnit::ServicedSeconds,
            vec![phase],
            peripherals,
        )
        .expect("static descriptors are well formed"),
    )
}

/// The full battery-life suite in Fig. 9 order.
#[must_use]
pub fn battery_life_suite() -> Vec<Workload> {
    BATTERY_LIFE_NAMES
        .iter()
        .map(|n| battery_workload(n).expect("all names are known"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_four_scenarios_in_paper_order() {
        let suite = battery_life_suite();
        assert_eq!(suite.len(), 4);
        let names: Vec<_> = suite.iter().map(|w| w.name.as_str()).collect();
        assert_eq!(names, BATTERY_LIFE_NAMES.to_vec());
        assert!(battery_workload("crypto-mining").is_none());
    }

    #[test]
    fn active_residency_is_between_10_and_40_percent() {
        // Sec. 7.3: "the active state (i.e., C0 power state) residency of
        // these workloads is between 10%-40%".
        for w in battery_life_suite() {
            for p in &w.phases {
                let c0 = p.cstates.active_fraction();
                assert!((0.10..=0.40).contains(&c0), "{}: C0 {c0}", w.name);
            }
        }
    }

    #[test]
    fn video_playback_matches_the_paper_residencies() {
        let w = battery_workload("video-playback").unwrap();
        let p = &w.phases[0];
        assert!((p.cstates.active_fraction() - 0.10).abs() < 1e-9);
        assert!((p.cstates.dram_active_fraction() - 0.15).abs() < 1e-9);
        assert_eq!(p.gfx.target_fps, Some(60.0));
    }

    #[test]
    fn all_scenarios_have_fixed_performance_demands() {
        for w in battery_life_suite() {
            assert_eq!(w.class, WorkloadClass::BatteryLife);
            assert_eq!(w.perf_unit, PerfUnit::ServicedSeconds);
            for p in &w.phases {
                assert!(
                    p.gfx.target_fps.is_some(),
                    "{} must have an FPS cap",
                    w.name
                );
            }
            // Every battery-life scenario drives the laptop panel.
            assert_eq!(w.peripherals.display.active_panels(), 1);
        }
    }

    #[test]
    fn video_conferencing_uses_the_camera() {
        let w = battery_workload("video-conferencing").unwrap();
        assert_ne!(w.peripherals.isp.mode(), IspMode::Off);
        assert!(
            w.peripherals.isochronous_demand()
                > battery_workload("video-playback")
                    .unwrap()
                    .peripherals
                    .isochronous_demand()
        );
    }

    #[test]
    fn demands_are_modest_relative_to_peak() {
        // The premise of Observation 1/3: typical (battery-life) use has
        // modest demands relative to the worst case.
        for w in battery_life_suite() {
            let frac = (w.nominal_bandwidth_hint()
                + w.peripherals.static_demand().as_bytes_per_sec())
                / 25.6e9;
            assert!(frac < 0.5, "{}: fraction {frac}", w.name);
        }
    }
}
