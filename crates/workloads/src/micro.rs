//! Microbenchmarks: the STREAM-like peak-bandwidth kernel used for the MRC
//! ablation (Fig. 4) and an idle workload used as a power-floor reference.

use sysscale_compute::{CState, CStateProfile, CpuPhaseDemand, GfxPhaseDemand};
use sysscale_iodev::{IoActivity, PeripheralConfig};
use sysscale_types::SimTime;

use crate::workload::{PerfUnit, Workload, WorkloadClass, WorkloadPhase};

/// A microbenchmark that exercises peak DRAM bandwidth (similar to STREAM,
/// Sec. 3 / Fig. 4): streaming accesses with very high MPKI, high
/// memory-level parallelism (low blocking fraction), on all threads.
#[must_use]
pub fn stream_peak_bandwidth() -> Workload {
    let phase = WorkloadPhase::cpu_only(
        SimTime::from_millis(1_000.0),
        CpuPhaseDemand {
            base_cpi: 0.6,
            mpki: 150.0,
            blocking_fraction: 0.03,
            active_threads: 4,
        },
    );
    Workload::new(
        "stream-peak-bw",
        WorkloadClass::Micro,
        PerfUnit::Instructions,
        vec![phase],
        PeripheralConfig::default(),
    )
    .expect("static descriptor is well formed")
}

/// A near-idle workload: the platform sits with the display on and the SoC
/// mostly in deep idle. Used as the power floor in sanity checks.
#[must_use]
pub fn idle_display_on() -> Workload {
    let cstates =
        CStateProfile::new(vec![(CState::C0, 0.05), (CState::C8, 0.95)]).expect("static profile");
    let phase = WorkloadPhase {
        duration: SimTime::from_millis(1_000.0),
        cpu: CpuPhaseDemand {
            base_cpi: 1.0,
            mpki: 1.0,
            blocking_fraction: 0.5,
            active_threads: 1,
        },
        gfx: GfxPhaseDemand::idle(),
        cstates,
        io: IoActivity::Idle,
    };
    Workload::new(
        "idle-display-on",
        WorkloadClass::BatteryLife,
        PerfUnit::ServicedSeconds,
        vec![phase],
        PeripheralConfig::single_hd_display(),
    )
    .expect("static descriptor is well formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::spec_workload;

    #[test]
    fn stream_demands_more_bandwidth_than_any_spec_benchmark() {
        let stream = stream_peak_bandwidth();
        let lbm = spec_workload("lbm").unwrap();
        assert!(stream.nominal_bandwidth_hint() > lbm.nominal_bandwidth_hint());
        // It should be able to approach the LPDDR3 peak.
        assert!(stream.nominal_bandwidth_hint() / 25.6e9 > 0.5);
    }

    #[test]
    fn idle_workload_is_mostly_asleep() {
        let idle = idle_display_on();
        assert!(idle.phases[0].cstates.active_fraction() <= 0.05);
        assert!(idle.nominal_bandwidth_hint() / 25.6e9 < 0.05);
    }
}
