//! SPEC CPU2006-like workload descriptors.
//!
//! The real SPEC CPU2006 binaries and reference inputs are licensed content
//! that cannot ship with this reproduction, so each benchmark is replaced by
//! a phase descriptor calibrated to its published memory behaviour: LLC
//! misses per kilo-instruction, latency sensitivity (blocking fraction), and
//! bandwidth-demand variation over time. The calibration targets the
//! qualitative facts the paper uses:
//!
//! * 416.gamess / 444.namd / 453.povray are core-bound and highly scalable
//!   with CPU frequency (largest SysScale gains, Sec. 7.1);
//! * 410.bwaves / 433.milc / 470.lbm / 462.libquantum are bandwidth-bound
//!   (no gain);
//! * 436.cactusADM is main-memory *latency* bound (Fig. 2(b));
//! * 400.perlbench has low demand with occasional spikes and 473.astar
//!   alternates seconds-long low-/high-bandwidth phases (Fig. 3(a)).

use sysscale_compute::CpuPhaseDemand;
use sysscale_iodev::PeripheralConfig;
use sysscale_types::SimTime;

use crate::workload::{PerfUnit, Workload, WorkloadClass, WorkloadPhase};

/// Calibration descriptor of one SPEC-like benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpecDescriptor {
    /// Benchmark name (SPEC numbering).
    pub name: &'static str,
    /// Base CPI with ideal memory.
    pub base_cpi: f64,
    /// Steady-state LLC misses per kilo-instruction.
    pub mpki: f64,
    /// Fraction of miss latency exposed to retirement (1 / MLP).
    pub blocking_fraction: f64,
    /// Bandwidth-demand variability pattern.
    pub pattern: PhasePattern,
}

/// Temporal pattern of a benchmark's memory demand (Fig. 3(a)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhasePattern {
    /// Roughly constant demand.
    Steady,
    /// Mostly low demand with short high-demand spikes (perlbench-like).
    Spiky,
    /// Seconds-long alternation between low and high demand (astar-like).
    Alternating,
}

/// The calibration table for the modelled subset of SPEC CPU2006.
pub const SPEC_CPU2006: &[SpecDescriptor] = &[
    SpecDescriptor {
        name: "400.perlbench",
        base_cpi: 0.90,
        mpki: 1.0,
        blocking_fraction: 0.50,
        pattern: PhasePattern::Spiky,
    },
    SpecDescriptor {
        name: "401.bzip2",
        base_cpi: 1.00,
        mpki: 3.0,
        blocking_fraction: 0.50,
        pattern: PhasePattern::Steady,
    },
    SpecDescriptor {
        name: "403.gcc",
        base_cpi: 1.10,
        mpki: 6.0,
        blocking_fraction: 0.60,
        pattern: PhasePattern::Spiky,
    },
    SpecDescriptor {
        name: "410.bwaves",
        base_cpi: 1.00,
        mpki: 19.0,
        blocking_fraction: 0.35,
        pattern: PhasePattern::Steady,
    },
    SpecDescriptor {
        name: "416.gamess",
        base_cpi: 0.80,
        mpki: 0.3,
        blocking_fraction: 0.40,
        pattern: PhasePattern::Steady,
    },
    SpecDescriptor {
        name: "429.mcf",
        base_cpi: 1.40,
        mpki: 30.0,
        blocking_fraction: 0.70,
        pattern: PhasePattern::Steady,
    },
    SpecDescriptor {
        name: "433.milc",
        base_cpi: 1.10,
        mpki: 16.0,
        blocking_fraction: 0.45,
        pattern: PhasePattern::Steady,
    },
    SpecDescriptor {
        name: "434.zeusmp",
        base_cpi: 1.00,
        mpki: 5.0,
        blocking_fraction: 0.40,
        pattern: PhasePattern::Steady,
    },
    SpecDescriptor {
        name: "435.gromacs",
        base_cpi: 0.90,
        mpki: 0.8,
        blocking_fraction: 0.40,
        pattern: PhasePattern::Steady,
    },
    SpecDescriptor {
        name: "436.cactusADM",
        base_cpi: 1.00,
        mpki: 9.0,
        blocking_fraction: 0.75,
        pattern: PhasePattern::Steady,
    },
    SpecDescriptor {
        name: "437.leslie3d",
        base_cpi: 1.00,
        mpki: 12.0,
        blocking_fraction: 0.40,
        pattern: PhasePattern::Steady,
    },
    SpecDescriptor {
        name: "444.namd",
        base_cpi: 0.80,
        mpki: 0.4,
        blocking_fraction: 0.40,
        pattern: PhasePattern::Steady,
    },
    SpecDescriptor {
        name: "445.gobmk",
        base_cpi: 1.10,
        mpki: 0.8,
        blocking_fraction: 0.50,
        pattern: PhasePattern::Steady,
    },
    SpecDescriptor {
        name: "447.dealII",
        base_cpi: 0.90,
        mpki: 1.5,
        blocking_fraction: 0.50,
        pattern: PhasePattern::Steady,
    },
    SpecDescriptor {
        name: "450.soplex",
        base_cpi: 1.10,
        mpki: 10.0,
        blocking_fraction: 0.55,
        pattern: PhasePattern::Spiky,
    },
    SpecDescriptor {
        name: "453.povray",
        base_cpi: 0.85,
        mpki: 0.1,
        blocking_fraction: 0.40,
        pattern: PhasePattern::Steady,
    },
    SpecDescriptor {
        name: "454.calculix",
        base_cpi: 0.90,
        mpki: 1.0,
        blocking_fraction: 0.40,
        pattern: PhasePattern::Steady,
    },
    SpecDescriptor {
        name: "456.hmmer",
        base_cpi: 0.85,
        mpki: 0.6,
        blocking_fraction: 0.40,
        pattern: PhasePattern::Steady,
    },
    SpecDescriptor {
        name: "458.sjeng",
        base_cpi: 1.00,
        mpki: 0.5,
        blocking_fraction: 0.50,
        pattern: PhasePattern::Steady,
    },
    SpecDescriptor {
        name: "459.GemsFDTD",
        base_cpi: 1.00,
        mpki: 14.0,
        blocking_fraction: 0.50,
        pattern: PhasePattern::Steady,
    },
    SpecDescriptor {
        name: "462.libquantum",
        base_cpi: 1.00,
        mpki: 22.0,
        blocking_fraction: 0.30,
        pattern: PhasePattern::Steady,
    },
    SpecDescriptor {
        name: "464.h264ref",
        base_cpi: 0.85,
        mpki: 1.2,
        blocking_fraction: 0.40,
        pattern: PhasePattern::Steady,
    },
    SpecDescriptor {
        name: "465.tonto",
        base_cpi: 0.90,
        mpki: 0.9,
        blocking_fraction: 0.40,
        pattern: PhasePattern::Steady,
    },
    SpecDescriptor {
        name: "470.lbm",
        base_cpi: 1.00,
        mpki: 24.0,
        blocking_fraction: 0.30,
        pattern: PhasePattern::Steady,
    },
    SpecDescriptor {
        name: "471.omnetpp",
        base_cpi: 1.30,
        mpki: 12.0,
        blocking_fraction: 0.70,
        pattern: PhasePattern::Steady,
    },
    SpecDescriptor {
        name: "473.astar",
        base_cpi: 1.10,
        mpki: 7.0,
        blocking_fraction: 0.60,
        pattern: PhasePattern::Alternating,
    },
    SpecDescriptor {
        name: "482.sphinx3",
        base_cpi: 1.00,
        mpki: 8.0,
        blocking_fraction: 0.50,
        pattern: PhasePattern::Steady,
    },
    SpecDescriptor {
        name: "483.xalancbmk",
        base_cpi: 1.20,
        mpki: 4.0,
        blocking_fraction: 0.60,
        pattern: PhasePattern::Spiky,
    },
];

fn demand(desc: &SpecDescriptor, mpki: f64, threads: u32) -> CpuPhaseDemand {
    CpuPhaseDemand {
        base_cpi: desc.base_cpi,
        mpki,
        blocking_fraction: desc.blocking_fraction,
        active_threads: threads,
    }
}

/// Builds the phase sequence for one descriptor and thread count.
fn phases(desc: &SpecDescriptor, threads: u32) -> Vec<WorkloadPhase> {
    match desc.pattern {
        PhasePattern::Steady => vec![WorkloadPhase::cpu_only(
            SimTime::from_millis(2_000.0),
            demand(desc, desc.mpki, threads),
        )],
        PhasePattern::Spiky => vec![
            WorkloadPhase::cpu_only(
                SimTime::from_millis(900.0),
                demand(desc, desc.mpki * 0.6, threads),
            ),
            WorkloadPhase::cpu_only(
                SimTime::from_millis(200.0),
                demand(desc, desc.mpki * 4.0, threads),
            ),
            WorkloadPhase::cpu_only(
                SimTime::from_millis(900.0),
                demand(desc, desc.mpki * 0.6, threads),
            ),
        ],
        PhasePattern::Alternating => vec![
            WorkloadPhase::cpu_only(
                SimTime::from_millis(2_000.0),
                demand(desc, desc.mpki * 0.25, threads),
            ),
            WorkloadPhase::cpu_only(
                SimTime::from_millis(2_000.0),
                demand(desc, desc.mpki * 2.6, threads),
            ),
        ],
    }
}

/// Builds the single-threaded workload for one descriptor.
#[must_use]
pub fn build_workload(desc: &SpecDescriptor) -> Workload {
    build_workload_with_threads(desc, 1)
}

/// Builds a rate-style multi-threaded variant of one descriptor.
#[must_use]
pub fn build_workload_with_threads(desc: &SpecDescriptor, threads: u32) -> Workload {
    let class = if threads > 1 {
        WorkloadClass::CpuMultiThread
    } else {
        WorkloadClass::CpuSingleThread
    };
    Workload::new(
        if threads > 1 {
            format!("{}-{}t", desc.name, threads)
        } else {
            desc.name.to_string()
        },
        class,
        PerfUnit::Instructions,
        phases(desc, threads),
        PeripheralConfig::single_hd_display(),
    )
    .expect("static descriptors are well formed")
}

/// The full single-threaded SPEC CPU2006-like suite.
#[must_use]
pub fn spec_cpu2006_suite() -> Vec<Workload> {
    SPEC_CPU2006.iter().map(build_workload).collect()
}

/// The multi-threaded (4-thread rate) variant of the suite.
#[must_use]
pub fn spec_cpu2006_rate_suite() -> Vec<Workload> {
    SPEC_CPU2006
        .iter()
        .map(|d| build_workload_with_threads(d, 4))
        .collect()
}

/// Looks a benchmark up by name (with or without the numeric prefix).
#[must_use]
pub fn spec_workload(name: &str) -> Option<Workload> {
    SPEC_CPU2006
        .iter()
        .find(|d| d.name == name || d.name.split('.').nth(1) == Some(name))
        .map(build_workload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_covers_the_benchmarks_the_paper_names() {
        let suite = spec_cpu2006_suite();
        assert!(suite.len() >= 25);
        for name in [
            "400.perlbench",
            "436.cactusADM",
            "470.lbm",
            "410.bwaves",
            "433.milc",
            "416.gamess",
            "444.namd",
            "473.astar",
        ] {
            assert!(suite.iter().any(|w| w.name == name), "{name} missing");
        }
    }

    #[test]
    fn lookup_by_full_or_short_name() {
        assert!(spec_workload("470.lbm").is_some());
        assert!(spec_workload("lbm").is_some());
        assert!(spec_workload("doom3").is_none());
    }

    #[test]
    fn memory_bound_benchmarks_demand_more_bandwidth_than_core_bound_ones() {
        let lbm = spec_workload("lbm").unwrap();
        let gamess = spec_workload("gamess").unwrap();
        let perl = spec_workload("perlbench").unwrap();
        assert!(lbm.nominal_bandwidth_hint() > 8.0 * perl.nominal_bandwidth_hint());
        assert!(perl.nominal_bandwidth_hint() > gamess.nominal_bandwidth_hint());
    }

    #[test]
    fn astar_alternates_and_perlbench_spikes() {
        let astar = spec_workload("astar").unwrap();
        assert_eq!(astar.phases.len(), 2);
        assert!(astar.phases[1].cpu.mpki > 5.0 * astar.phases[0].cpu.mpki);
        // Phases are seconds long (Sec. 7.1: "execution phases of up to
        // several seconds").
        assert!(astar.phases[0].duration >= SimTime::from_millis(1_000.0));
        let perl = spec_workload("perlbench").unwrap();
        assert_eq!(perl.phases.len(), 3);
        let spike = perl.phases[1].cpu.mpki;
        assert!(spike > 3.0 * perl.phases[0].cpu.mpki);
        assert!(perl.phases[1].duration < perl.phases[0].duration);
    }

    #[test]
    fn rate_suite_uses_multiple_threads() {
        let rate = spec_cpu2006_rate_suite();
        assert!(rate
            .iter()
            .all(|w| w.class == WorkloadClass::CpuMultiThread));
        assert!(rate.iter().all(|w| w.phases[0].cpu.active_threads == 4));
        assert!(rate.iter().all(|w| w.name.ends_with("-4t")));
        // Multi-threaded variants demand more bandwidth.
        let lbm_1t = spec_workload("lbm").unwrap();
        let lbm_4t = rate.iter().find(|w| w.name.starts_with("470.lbm")).unwrap();
        assert!(lbm_4t.nominal_bandwidth_hint() > lbm_1t.nominal_bandwidth_hint());
    }

    #[test]
    fn cactusadm_is_latency_sensitive() {
        // Fig. 2(b): cactusADM's bottleneck is main-memory latency; in the
        // descriptor this shows up as a high blocking fraction.
        let desc = SPEC_CPU2006
            .iter()
            .find(|d| d.name == "436.cactusADM")
            .unwrap();
        assert!(desc.blocking_fraction >= 0.7);
        let lbm = SPEC_CPU2006.iter().find(|d| d.name == "470.lbm").unwrap();
        assert!(lbm.blocking_fraction < desc.blocking_fraction);
        assert!(lbm.mpki > desc.mpki);
    }

    #[test]
    fn all_descriptors_produce_valid_workloads() {
        for d in SPEC_CPU2006 {
            let w = build_workload(d);
            assert!(!w.phases.is_empty());
            assert!(w.iteration_length() > SimTime::ZERO);
            for p in &w.phases {
                assert!(p.validate().is_ok());
            }
        }
    }
}
