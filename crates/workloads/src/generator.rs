//! Synthetic workload population generator.
//!
//! The predictor study of Fig. 6 runs "more than 1600 workloads" drawn from
//! representative performance and office-productivity suites (SPEC CPU2006,
//! SYSmark, MobileMark, 3DMark). Those suites cannot ship here, so this
//! generator produces a population of synthetic workloads whose
//! characteristics (CPI, MPKI, memory-level parallelism, thread count,
//! graphics intensity) span the same space. The same population is used for
//! the offline threshold-calibration step of Sec. 4.2.

use sysscale_compute::{CpuPhaseDemand, GfxPhaseDemand};
use sysscale_iodev::PeripheralConfig;
use sysscale_types::SimTime;

use sysscale_types::rng::SplitMix64;

use crate::workload::{PerfUnit, Workload, WorkloadClass, WorkloadPhase};

/// Configuration of the synthetic population generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneratorConfig {
    /// RNG seed (the study is deterministic given the seed).
    pub seed: u64,
    /// Duration of each generated workload's single phase.
    pub phase_duration: SimTime,
    /// Range of base CPI values.
    pub cpi_range: (f64, f64),
    /// Range of MPKI values (log-uniformly sampled so both core-bound and
    /// memory-bound workloads are well represented).
    pub mpki_range: (f64, f64),
    /// Range of blocking fractions.
    pub blocking_range: (f64, f64),
    /// Probability that a generated CPU workload is multi-threaded.
    pub multithread_probability: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            seed: 0x5CA1E,
            phase_duration: SimTime::from_millis(500.0),
            cpi_range: (0.6, 1.6),
            mpki_range: (0.05, 45.0),
            blocking_range: (0.2, 0.8),
            multithread_probability: 0.5,
        }
    }
}

/// Synthetic workload population generator.
#[derive(Debug)]
pub struct WorkloadGenerator {
    config: GeneratorConfig,
    rng: SplitMix64,
    generated: usize,
}

impl WorkloadGenerator {
    /// Creates a generator with the given configuration.
    #[must_use]
    pub fn new(config: GeneratorConfig) -> Self {
        Self {
            rng: SplitMix64::new(config.seed),
            config,
            generated: 0,
        }
    }

    /// Creates a generator with the default configuration and a caller-chosen
    /// seed.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        Self::new(GeneratorConfig {
            seed,
            ..GeneratorConfig::default()
        })
    }

    fn log_uniform(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.gen_range(lo.ln(), hi.ln()).exp()
    }

    /// Generates one CPU workload (single- or multi-threaded).
    pub fn next_cpu_workload(&mut self) -> Workload {
        let cfg = self.config;
        let base_cpi = self.rng.gen_range(cfg.cpi_range.0, cfg.cpi_range.1);
        let mpki = self.log_uniform(cfg.mpki_range.0, cfg.mpki_range.1);
        let blocking_fraction = self
            .rng
            .gen_range(cfg.blocking_range.0, cfg.blocking_range.1);
        let multithreaded = self.rng.gen_bool(cfg.multithread_probability);
        let threads = if multithreaded { 4 } else { 1 };
        let class = if multithreaded {
            WorkloadClass::CpuMultiThread
        } else {
            WorkloadClass::CpuSingleThread
        };
        self.generated += 1;
        let phase = WorkloadPhase::cpu_only(
            cfg.phase_duration,
            CpuPhaseDemand {
                base_cpi,
                mpki,
                blocking_fraction,
                active_threads: threads,
            },
        );
        Workload::new(
            format!("synthetic-cpu-{:05}", self.generated),
            class,
            PerfUnit::Instructions,
            vec![phase],
            PeripheralConfig::single_hd_display(),
        )
        .expect("generated parameters are within validated ranges")
    }

    /// Generates one graphics workload.
    pub fn next_graphics_workload(&mut self) -> Workload {
        let cfg = self.config;
        let cycles_per_frame = self.rng.gen_range(3.0e6, 30.0e6);
        let bytes_per_frame = self.rng.gen_range(30.0e6, 280.0e6);
        let cpu_mpki = self.rng.gen_range(0.5, 4.0);
        self.generated += 1;
        let phase = WorkloadPhase {
            duration: cfg.phase_duration,
            cpu: CpuPhaseDemand {
                base_cpi: 1.0,
                mpki: cpu_mpki,
                blocking_fraction: 0.4,
                active_threads: 1,
            },
            gfx: GfxPhaseDemand {
                cycles_per_frame,
                bytes_per_frame,
                target_fps: None,
            },
            cstates: sysscale_compute::CStateProfile::always_active(),
            io: sysscale_iodev::IoActivity::Idle,
        };
        Workload::new(
            format!("synthetic-gfx-{:05}", self.generated),
            WorkloadClass::Graphics,
            PerfUnit::Frames,
            vec![phase],
            PeripheralConfig::single_hd_display(),
        )
        .expect("generated parameters are within validated ranges")
    }

    /// Generates a mixed population of `count` workloads with the class mix
    /// of the Fig. 6 study (1/3 single-thread CPU, 1/3 multi-thread CPU,
    /// 1/3 graphics — approximately, driven by the configured probability).
    pub fn population(&mut self, count: usize) -> Vec<Workload> {
        (0..count)
            .map(|i| {
                if i % 3 == 2 {
                    self.next_graphics_workload()
                } else {
                    self.next_cpu_workload()
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic_for_a_seed() {
        let a: Vec<_> = WorkloadGenerator::with_seed(7).population(20);
        let b: Vec<_> = WorkloadGenerator::with_seed(7).population(20);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.phases, y.phases);
        }
        let c: Vec<_> = WorkloadGenerator::with_seed(8).population(20);
        assert!(a.iter().zip(c.iter()).any(|(x, y)| x.phases != y.phases));
    }

    #[test]
    fn population_mixes_classes() {
        let pop = WorkloadGenerator::with_seed(1).population(120);
        let gfx = pop
            .iter()
            .filter(|w| w.class == WorkloadClass::Graphics)
            .count();
        let st = pop
            .iter()
            .filter(|w| w.class == WorkloadClass::CpuSingleThread)
            .count();
        let mt = pop
            .iter()
            .filter(|w| w.class == WorkloadClass::CpuMultiThread)
            .count();
        assert_eq!(gfx + st + mt, 120);
        assert!(gfx >= 30);
        assert!(st >= 15);
        assert!(mt >= 15);
    }

    #[test]
    fn population_spans_core_bound_to_memory_bound() {
        let pop = WorkloadGenerator::with_seed(2).population(300);
        let hints: Vec<f64> = pop
            .iter()
            .map(|w| w.nominal_bandwidth_hint() / 1e9)
            .collect();
        let min = hints.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = hints.iter().cloned().fold(0.0, f64::max);
        assert!(min < 0.5, "some near-idle demand ({min} GB/s)");
        assert!(max > 5.0, "some heavy demand ({max} GB/s)");
    }

    #[test]
    fn generated_workloads_are_valid() {
        let pop = WorkloadGenerator::with_seed(3).population(50);
        for w in pop {
            for p in &w.phases {
                assert!(p.validate().is_ok(), "{}", w.name);
            }
        }
    }

    #[test]
    fn supports_study_scale_populations() {
        // The Fig. 6 study uses >1600 workloads; make sure generating that
        // many is cheap and well formed.
        let pop = WorkloadGenerator::with_seed(4).population(1_700);
        assert_eq!(pop.len(), 1_700);
    }
}
