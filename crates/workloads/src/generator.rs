//! Synthetic workload population generator.
//!
//! The predictor study of Fig. 6 runs "more than 1600 workloads" drawn from
//! representative performance and office-productivity suites (SPEC CPU2006,
//! SYSmark, MobileMark, 3DMark). Those suites cannot ship here, so this
//! generator produces a population of synthetic workloads whose
//! characteristics (CPI, MPKI, memory-level parallelism, thread count,
//! graphics intensity) span the same space. The same population is used for
//! the offline threshold-calibration step of Sec. 4.2.
//!
//! ## Streaming sources
//!
//! Populations can be consumed two ways: materialized up front
//! ([`WorkloadGenerator::population`] / [`class_buckets`]) or streamed
//! through a [`WorkloadSource`] ([`PopulationSource`] /
//! [`ClassBucketSource`]). A source is a *recipe* — seed plus shape — whose
//! [`WorkloadSource::stream`] replays the exact materialized sequence from a
//! fresh SplitMix64 stream on every call, so consumers (one per executor
//! worker) generate workloads on the fly and hold **O(1) workloads live**
//! no matter how large the population is. Million-cell predictor-study
//! populations run in O(workers) workload memory this way.

use sysscale_compute::{CpuPhaseDemand, GfxPhaseDemand};
use sysscale_iodev::PeripheralConfig;
use sysscale_types::SimTime;

use sysscale_types::rng::SplitMix64;

use crate::workload::{PerfUnit, Workload, WorkloadClass, WorkloadPhase};

/// Configuration of the synthetic population generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneratorConfig {
    /// RNG seed (the study is deterministic given the seed).
    pub seed: u64,
    /// Duration of each generated workload's single phase.
    pub phase_duration: SimTime,
    /// Range of base CPI values.
    pub cpi_range: (f64, f64),
    /// Range of MPKI values (log-uniformly sampled so both core-bound and
    /// memory-bound workloads are well represented).
    pub mpki_range: (f64, f64),
    /// Range of blocking fractions.
    pub blocking_range: (f64, f64),
    /// Probability that a generated CPU workload is multi-threaded.
    pub multithread_probability: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            seed: 0x5CA1E,
            phase_duration: SimTime::from_millis(500.0),
            cpi_range: (0.6, 1.6),
            mpki_range: (0.05, 45.0),
            blocking_range: (0.2, 0.8),
            multithread_probability: 0.5,
        }
    }
}

/// Synthetic workload population generator.
#[derive(Debug)]
pub struct WorkloadGenerator {
    config: GeneratorConfig,
    rng: SplitMix64,
    generated: usize,
}

impl WorkloadGenerator {
    /// Creates a generator with the given configuration.
    #[must_use]
    pub fn new(config: GeneratorConfig) -> Self {
        Self {
            rng: SplitMix64::new(config.seed),
            config,
            generated: 0,
        }
    }

    /// Creates a generator with the default configuration and a caller-chosen
    /// seed.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        Self::new(GeneratorConfig {
            seed,
            ..GeneratorConfig::default()
        })
    }

    fn log_uniform(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.gen_range(lo.ln(), hi.ln()).exp()
    }

    /// Generates one CPU workload (single- or multi-threaded).
    pub fn next_cpu_workload(&mut self) -> Workload {
        let cfg = self.config;
        let base_cpi = self.rng.gen_range(cfg.cpi_range.0, cfg.cpi_range.1);
        let mpki = self.log_uniform(cfg.mpki_range.0, cfg.mpki_range.1);
        let blocking_fraction = self
            .rng
            .gen_range(cfg.blocking_range.0, cfg.blocking_range.1);
        let multithreaded = self.rng.gen_bool(cfg.multithread_probability);
        let threads = if multithreaded { 4 } else { 1 };
        let class = if multithreaded {
            WorkloadClass::CpuMultiThread
        } else {
            WorkloadClass::CpuSingleThread
        };
        self.generated += 1;
        let phase = WorkloadPhase::cpu_only(
            cfg.phase_duration,
            CpuPhaseDemand {
                base_cpi,
                mpki,
                blocking_fraction,
                active_threads: threads,
            },
        );
        Workload::new(
            format!("synthetic-cpu-{:05}", self.generated),
            class,
            PerfUnit::Instructions,
            vec![phase],
            PeripheralConfig::single_hd_display(),
        )
        .expect("generated parameters are within validated ranges")
    }

    /// Generates one graphics workload.
    pub fn next_graphics_workload(&mut self) -> Workload {
        let cfg = self.config;
        let cycles_per_frame = self.rng.gen_range(3.0e6, 30.0e6);
        let bytes_per_frame = self.rng.gen_range(30.0e6, 280.0e6);
        let cpu_mpki = self.rng.gen_range(0.5, 4.0);
        self.generated += 1;
        let phase = WorkloadPhase {
            duration: cfg.phase_duration,
            cpu: CpuPhaseDemand {
                base_cpi: 1.0,
                mpki: cpu_mpki,
                blocking_fraction: 0.4,
                active_threads: 1,
            },
            gfx: GfxPhaseDemand {
                cycles_per_frame,
                bytes_per_frame,
                target_fps: None,
            },
            cstates: sysscale_compute::CStateProfile::always_active(),
            io: sysscale_iodev::IoActivity::Idle,
        };
        Workload::new(
            format!("synthetic-gfx-{:05}", self.generated),
            WorkloadClass::Graphics,
            PerfUnit::Frames,
            vec![phase],
            PeripheralConfig::single_hd_display(),
        )
        .expect("generated parameters are within validated ranges")
    }

    /// The class-mix rule of the mixed population: every third workload is
    /// graphics, the rest CPU. The single definition shared by the
    /// materialized ([`WorkloadGenerator::population`]) and streaming
    /// ([`PopulationSource`]) paths, so they cannot drift apart.
    fn next_mixed_workload(&mut self, index: usize) -> Workload {
        if index % 3 == 2 {
            self.next_graphics_workload()
        } else {
            self.next_cpu_workload()
        }
    }

    /// Generates a mixed population of `count` workloads with the class mix
    /// of the Fig. 6 study (1/3 single-thread CPU, 1/3 multi-thread CPU,
    /// 1/3 graphics — approximately, driven by the configured probability).
    pub fn population(&mut self, count: usize) -> Vec<Workload> {
        (0..count).map(|i| self.next_mixed_workload(i)).collect()
    }
}

// ---------------------------------------------------------------------------
// Streaming workload sources
// ---------------------------------------------------------------------------

/// A lazily-generated, replayable stream of workloads with a known length.
///
/// Implementations are *recipes*, not buffers: every [`WorkloadSource::stream`]
/// call starts a fresh pass that yields the identical sequence (same
/// workloads, same order) as [`WorkloadSource::materialize`], so several
/// executor workers can each pull an independent iterator and a consumer
/// never holds more than the workload it is currently using.
pub trait WorkloadSource: Sync {
    /// Number of workloads the stream yields.
    fn len(&self) -> usize;

    /// `true` when the stream yields nothing.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A fresh iterator over the full stream, starting at workload 0.
    /// Repeated calls yield bit-identical sequences.
    ///
    /// Named `stream` (not `iter`) so bringing the trait into scope never
    /// shadows inherent `iter` methods on `Vec`/slices.
    fn stream(&self) -> Box<dyn Iterator<Item = Workload> + Send + '_>;

    /// Collects the stream into a `Vec` — the materialized reference path
    /// the differential tests compare the streaming path against.
    fn materialize(&self) -> Vec<Workload> {
        self.stream().collect()
    }
}

/// Already-materialized workloads are trivially a source: iteration clones
/// each element on demand.
impl WorkloadSource for [Workload] {
    fn len(&self) -> usize {
        <[Workload]>::len(self)
    }

    fn stream(&self) -> Box<dyn Iterator<Item = Workload> + Send + '_> {
        Box::new(self.iter().cloned())
    }

    fn materialize(&self) -> Vec<Workload> {
        self.to_vec()
    }
}

/// Borrowed slices are sources too (`&[Workload]` is `Sized`, so a
/// `&&[Workload]` coerces to `&dyn WorkloadSource` where the unsized
/// `[Workload]` itself cannot) — this is what lets callers forward a
/// borrowed population with no upfront copy.
impl WorkloadSource for &[Workload] {
    fn len(&self) -> usize {
        <[Workload]>::len(self)
    }

    fn stream(&self) -> Box<dyn Iterator<Item = Workload> + Send + '_> {
        (**self).stream()
    }

    fn materialize(&self) -> Vec<Workload> {
        self.to_vec()
    }
}

impl WorkloadSource for Vec<Workload> {
    fn len(&self) -> usize {
        self.as_slice().len()
    }

    fn stream(&self) -> Box<dyn Iterator<Item = Workload> + Send + '_> {
        self.as_slice().stream()
    }

    fn materialize(&self) -> Vec<Workload> {
        self.clone()
    }
}

/// A generator-backed [`WorkloadSource`] yielding exactly the sequence of
/// [`WorkloadGenerator::population`] for the same configuration — without
/// materializing it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PopulationSource {
    config: GeneratorConfig,
    count: usize,
}

impl PopulationSource {
    /// A source producing `count` workloads from `config`'s seed.
    #[must_use]
    pub fn new(config: GeneratorConfig, count: usize) -> Self {
        Self { config, count }
    }

    /// A source with the default configuration and a caller-chosen seed.
    #[must_use]
    pub fn with_seed(seed: u64, count: usize) -> Self {
        Self::new(
            GeneratorConfig {
                seed,
                ..GeneratorConfig::default()
            },
            count,
        )
    }
}

impl WorkloadSource for PopulationSource {
    fn len(&self) -> usize {
        self.count
    }

    fn stream(&self) -> Box<dyn Iterator<Item = Workload> + Send + '_> {
        let mut generator = WorkloadGenerator::new(self.config);
        Box::new((0..self.count).map(move |i| generator.next_mixed_workload(i)))
    }
}

const BUCKET_CLASSES: [WorkloadClass; 3] = [
    WorkloadClass::CpuSingleThread,
    WorkloadClass::CpuMultiThread,
    WorkloadClass::Graphics,
];

fn bucket_index(class: WorkloadClass) -> Option<usize> {
    BUCKET_CLASSES.iter().position(|&c| c == class)
}

/// Generates the next workload of the class-bucketed stream given the
/// current bucket fill counts — the single definition of the Fig. 6
/// population's alternation policy, shared by the materialized and streaming
/// paths so they cannot drift apart.
fn next_bucket_candidate(
    generator: &mut WorkloadGenerator,
    counts: &[usize; 3],
    quota: usize,
) -> Workload {
    if counts[2] < quota {
        // Alternate sources so the graphics quota fills too.
        if counts[0] + counts[1] < 2 * quota {
            generator.next_cpu_workload()
        } else {
            generator.next_graphics_workload()
        }
    } else {
        generator.next_cpu_workload()
    }
}

/// Generates the Fig. 6 study population for one frequency pair: three
/// class buckets (single-thread CPU, multi-thread CPU, graphics), each
/// filled to `quota` workloads, in bucket-class order.
///
/// This is the materialized reference; [`ClassBucketSource`] streams any one
/// bucket of the same population without holding the others.
#[must_use]
pub fn class_buckets(config: GeneratorConfig, quota: usize) -> Vec<(WorkloadClass, Vec<Workload>)> {
    let mut generator = WorkloadGenerator::new(config);
    let mut counts = [0usize; 3];
    let mut buckets: Vec<(WorkloadClass, Vec<Workload>)> = BUCKET_CLASSES
        .iter()
        .map(|&class| (class, Vec::new()))
        .collect();
    while counts.iter().any(|&c| c < quota) {
        let workload = next_bucket_candidate(&mut generator, &counts, quota);
        if let Some(idx) = bucket_index(workload.class) {
            if counts[idx] < quota {
                counts[idx] += 1;
                buckets[idx].1.push(workload);
            }
        }
    }
    buckets
}

/// A [`WorkloadSource`] streaming one class bucket of the Fig. 6 population:
/// the exact workloads [`class_buckets`] would place in `class`'s bucket, in
/// the same order, generated on the fly.
///
/// The stream replays the alternation policy with three fill *counters*
/// instead of three buckets, yields only the workloads accepted into the
/// target class, and stops once that class reaches its quota — so a consumer
/// holds one live workload while the other classes' candidates are generated
/// and immediately dropped.
///
/// Like [`class_buckets`], the stream assumes the generator's configuration
/// can produce every class (a `multithread_probability` of exactly 0 or 1
/// would starve one CPU bucket and never terminate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassBucketSource {
    config: GeneratorConfig,
    quota: usize,
    class: WorkloadClass,
}

impl ClassBucketSource {
    /// A source for `class`'s bucket of the `(config, quota)` population.
    ///
    /// `class` must be one of the three bucketed classes (single-thread CPU,
    /// multi-thread CPU, graphics).
    ///
    /// # Panics
    ///
    /// Panics if `class` is not a bucketed class.
    #[must_use]
    pub fn new(config: GeneratorConfig, quota: usize, class: WorkloadClass) -> Self {
        assert!(
            bucket_index(class).is_some(),
            "{class:?} is not a Fig. 6 bucket class"
        );
        Self {
            config,
            quota,
            class,
        }
    }

    /// A source with the default generator configuration and a caller-chosen
    /// seed.
    ///
    /// # Panics
    ///
    /// Panics if `class` is not a bucketed class.
    #[must_use]
    pub fn with_seed(seed: u64, quota: usize, class: WorkloadClass) -> Self {
        Self::new(
            GeneratorConfig {
                seed,
                ..GeneratorConfig::default()
            },
            quota,
            class,
        )
    }

    /// The class this source streams.
    #[must_use]
    pub fn class(&self) -> WorkloadClass {
        self.class
    }
}

impl WorkloadSource for ClassBucketSource {
    fn len(&self) -> usize {
        self.quota
    }

    fn stream(&self) -> Box<dyn Iterator<Item = Workload> + Send + '_> {
        let mut generator = WorkloadGenerator::new(self.config);
        let mut counts = [0usize; 3];
        let target = bucket_index(self.class).expect("validated at construction");
        let quota = self.quota;
        Box::new(std::iter::from_fn(move || {
            while counts[target] < quota {
                let workload = next_bucket_candidate(&mut generator, &counts, quota);
                if let Some(idx) = bucket_index(workload.class) {
                    if counts[idx] < quota {
                        counts[idx] += 1;
                        if idx == target {
                            return Some(workload);
                        }
                    }
                }
            }
            None
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic_for_a_seed() {
        let a: Vec<_> = WorkloadGenerator::with_seed(7).population(20);
        let b: Vec<_> = WorkloadGenerator::with_seed(7).population(20);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.phases, y.phases);
        }
        let c: Vec<_> = WorkloadGenerator::with_seed(8).population(20);
        assert!(a.iter().zip(c.iter()).any(|(x, y)| x.phases != y.phases));
    }

    #[test]
    fn population_mixes_classes() {
        let pop = WorkloadGenerator::with_seed(1).population(120);
        let gfx = pop
            .iter()
            .filter(|w| w.class == WorkloadClass::Graphics)
            .count();
        let st = pop
            .iter()
            .filter(|w| w.class == WorkloadClass::CpuSingleThread)
            .count();
        let mt = pop
            .iter()
            .filter(|w| w.class == WorkloadClass::CpuMultiThread)
            .count();
        assert_eq!(gfx + st + mt, 120);
        assert!(gfx >= 30);
        assert!(st >= 15);
        assert!(mt >= 15);
    }

    #[test]
    fn population_spans_core_bound_to_memory_bound() {
        let pop = WorkloadGenerator::with_seed(2).population(300);
        let hints: Vec<f64> = pop
            .iter()
            .map(|w| w.nominal_bandwidth_hint() / 1e9)
            .collect();
        let min = hints.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = hints.iter().cloned().fold(0.0, f64::max);
        assert!(min < 0.5, "some near-idle demand ({min} GB/s)");
        assert!(max > 5.0, "some heavy demand ({max} GB/s)");
    }

    #[test]
    fn generated_workloads_are_valid() {
        let pop = WorkloadGenerator::with_seed(3).population(50);
        for w in pop {
            for p in &w.phases {
                assert!(p.validate().is_ok(), "{}", w.name);
            }
        }
    }

    #[test]
    fn population_source_streams_the_materialized_sequence() {
        for seed in [0, 7, 0xF166, u64::MAX] {
            let materialized = WorkloadGenerator::with_seed(seed).population(21);
            let source = PopulationSource::with_seed(seed, 21);
            assert_eq!(WorkloadSource::len(&source), 21);
            let streamed: Vec<Workload> = source.stream().collect();
            assert_eq!(streamed, materialized, "seed {seed}");
            // A second pass replays the identical stream.
            assert_eq!(source.materialize(), materialized, "seed {seed} replay");
        }
    }

    #[test]
    fn class_bucket_sources_stream_exactly_their_materialized_bucket() {
        for seed in [1, 42, 0xF167] {
            let config = GeneratorConfig {
                seed,
                ..GeneratorConfig::default()
            };
            let reference = class_buckets(config, 9);
            assert_eq!(reference.len(), 3);
            for (class, bucket) in &reference {
                assert_eq!(bucket.len(), 9, "{class:?}");
                let source = ClassBucketSource::new(config, 9, *class);
                assert_eq!(source.class(), *class);
                let streamed: Vec<Workload> = source.stream().collect();
                assert_eq!(&streamed, bucket, "seed {seed} {class:?}");
            }
        }
    }

    #[test]
    fn slices_and_vecs_are_sources() {
        let pop = WorkloadGenerator::with_seed(9).population(5);
        let via_slice: Vec<Workload> = pop.as_slice().stream().collect();
        assert_eq!(via_slice, pop);
        assert_eq!(WorkloadSource::len(&pop), 5);
        assert!(!WorkloadSource::is_empty(&pop));
        assert_eq!(WorkloadSource::materialize(&pop), pop);
        let empty: Vec<Workload> = Vec::new();
        assert!(WorkloadSource::is_empty(&empty));
    }

    #[test]
    #[should_panic(expected = "not a Fig. 6 bucket class")]
    fn non_bucket_classes_are_rejected() {
        let _ = ClassBucketSource::with_seed(1, 4, WorkloadClass::BatteryLife);
    }

    #[test]
    fn supports_study_scale_populations() {
        // The Fig. 6 study uses >1600 workloads; make sure generating that
        // many is cheap and well formed.
        let pop = WorkloadGenerator::with_seed(4).population(1_700);
        assert_eq!(pop.len(), 1_700);
    }
}
