//! A counting/live-bytes tracking global allocator for memory-contract
//! tests and benches.
//!
//! The workspace pins several memory contracts with allocator observation —
//! the slice loop's zero-per-slice allocations, the governors'
//! allocation-free evaluation intervals, and the fold pipeline's O(workers)
//! peak result memory (`tests/integration_perf.rs`), plus the `fold`
//! bench's `peak_result_bytes` records. This module is their **single**
//! tracker definition, so the numbers stay comparable across binaries: each
//! observing binary registers the shared type once,
//!
//! ```ignore
//! use sysscale_types::alloctrack::TrackingAllocator;
//!
//! #[global_allocator]
//! static ALLOCATOR: TrackingAllocator = TrackingAllocator;
//! ```
//!
//! and reads measurements through [`allocations_during`] /
//! [`peak_growth_during`].
//!
//! The counters are process-global: tests observing them should serialize
//! on a lock, and a binary that never registers the allocator reads zeros.
//!
//! This lives in its own leaf crate (rather than `sysscale-types`) because
//! a `GlobalAlloc` impl requires `unsafe impl`, and every model crate
//! forbids unsafe code.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapper that counts allocation calls and tracks
/// live/peak heap bytes (the default `realloc`/`alloc_zeroed` route through
/// `alloc`, so growth is counted too).
#[derive(Debug, Default, Clone, Copy)]
pub struct TrackingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates allocation to `System` unchanged; the wrapper only
// updates atomic counters around the calls.
unsafe impl GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        let live =
            LIVE_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed) + layout.size() as u64;
        PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
        // SAFETY: the caller upholds `GlobalAlloc::alloc`'s contract, which
        // is forwarded to `System` unchanged.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        // SAFETY: the caller upholds `GlobalAlloc::dealloc`'s contract,
        // which is forwarded to `System` unchanged.
        unsafe { System.dealloc(ptr, layout) }
    }
}

/// Number of allocation calls observed while `f` ran.
pub fn allocations_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let result = f();
    (ALLOCATIONS.load(Ordering::Relaxed) - before, result)
}

/// Peak heap growth (bytes above the level at entry) while `f` ran.
pub fn peak_growth_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let baseline = LIVE_BYTES.load(Ordering::Relaxed);
    PEAK_BYTES.store(baseline, Ordering::Relaxed);
    let result = f();
    let peak = PEAK_BYTES.load(Ordering::Relaxed);
    (peak.saturating_sub(baseline), result)
}
