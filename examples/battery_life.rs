//! Reproduces the Fig. 9 battery-life evaluation: average power reduction of
//! SysScale (and the baselines) on web browsing, light gaming, video
//! conferencing, and video playback.
//!
//! ```text
//! cargo run --release --example battery_life
//! ```

use sysscale::experiments::evaluation;
use sysscale::{DemandPredictor, SocConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SocConfig::skylake_default();
    let predictor = DemandPredictor::skylake_default();
    let figure = evaluation::fig9(&config, &predictor)?;

    println!("Fig. 9 — average power reduction on battery-life workloads");
    println!(
        "{:<20} {:>10} {:>12} {:>12} {:>10}",
        "workload", "baseline W", "MemScale-R", "CoScale-R", "SysScale"
    );
    for row in &figure.rows {
        println!(
            "{:<20} {:>10.3} {:>11.1}% {:>11.1}% {:>9.1}%",
            row.workload,
            row.baseline_power_w,
            row.memscale_redist_pct,
            row.coscale_redist_pct,
            row.sysscale_pct
        );
    }
    println!(
        "SysScale average reduction: {:.1}% (paper: 8.5% average, up to 10.7%)",
        figure.sysscale_avg_pct
    );
    Ok(())
}
