//! Reproduces the Fig. 7 comparison on the SPEC CPU2006-like suite:
//! MemScale-Redist and CoScale-Redist (projected) versus SysScale
//! (measured). The whole suite × governor matrix runs through one parallel
//! `ScenarioSet::run_parallel` batch inside `evaluation::fig7`
//! (`SYSSCALE_THREADS` pins the worker count; the result is identical at
//! any value).
//!
//! ```text
//! cargo run --release --example spec_cpu_sweep
//! ```

use sysscale::experiments::evaluation;
use sysscale::{DemandPredictor, SocConfig};
use sysscale_workloads::spec_cpu2006_suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SocConfig::skylake_default();
    let predictor = DemandPredictor::skylake_default();

    // The raw matrix is available too: one call, sharded across the worker
    // pool, every (workload, governor) cell keyed in the RunSet in stable
    // scenario order.
    let suite = spec_cpu2006_suite();
    let runs = evaluation::evaluation_matrix(&config, &predictor, &suite)?;
    println!(
        "matrix: {} runs over {} workloads x {:?} on {} worker(s)",
        runs.len(),
        runs.workloads().len(),
        runs.governors(),
        sysscale_types::exec::default_threads()
    );

    let figure = evaluation::fig7(&config, &predictor)?;
    println!("Fig. 7 — SPEC CPU2006 performance improvement over the baseline");
    println!(
        "{:<18} {:>12} {:>12} {:>10}",
        "workload", "MemScale-R", "CoScale-R", "SysScale"
    );
    for row in &figure.rows {
        println!(
            "{:<18} {:>11.1}% {:>11.1}% {:>9.1}%",
            row.workload, row.memscale_redist_pct, row.coscale_redist_pct, row.sysscale_pct
        );
    }
    println!(
        "{:<18} {:>11.1}% {:>11.1}% {:>9.1}%",
        "average", figure.memscale_avg_pct, figure.coscale_avg_pct, figure.sysscale_avg_pct
    );
    println!(
        "paper reports     {:>11} {:>12} {:>10}",
        "1.7%", "3.8%", "9.2%"
    );
    println!(
        "measured max SysScale gain: {:.1}% (paper: up to 16%)",
        figure.sysscale_max_pct
    );
    Ok(())
}
