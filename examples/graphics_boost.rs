//! Reproduces the Fig. 8 graphics evaluation: 3DMark-like frame-rate
//! improvement when SysScale hands the uncore's saved budget to the graphics
//! engine.
//!
//! ```text
//! cargo run --release --example graphics_boost
//! ```

use sysscale::experiments::evaluation;
use sysscale::{DemandPredictor, SocConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SocConfig::skylake_default();
    let predictor = DemandPredictor::skylake_default();
    let figure = evaluation::fig8(&config, &predictor)?;

    println!("Fig. 8 — graphics performance improvement over the baseline");
    println!(
        "{:<16} {:>12} {:>12} {:>10}",
        "workload", "MemScale-R", "CoScale-R", "SysScale"
    );
    for row in &figure.rows {
        println!(
            "{:<16} {:>11.1}% {:>11.1}% {:>9.1}%",
            row.workload, row.memscale_redist_pct, row.coscale_redist_pct, row.sysscale_pct
        );
    }
    println!(
        "average          {:>11.1}% {:>11.1}% {:>9.1}%",
        figure.memscale_avg_pct, figure.coscale_avg_pct, figure.sysscale_avg_pct
    );
    println!("paper reports SysScale: 8.9% / 6.7% / 8.1% (7.9% average)");
    Ok(())
}
