//! Quickstart: run one SPEC-like workload under the baseline and under
//! SysScale on the simulated Skylake-class mobile SoC and compare them.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use sysscale::{FixedGovernor, SocConfig, SocSimulator, SysScaleGovernor};
use sysscale_types::{Domain, SimTime};
use sysscale_workloads::spec_workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SocConfig::skylake_default();
    println!(
        "Platform: 2-core Skylake-class SoC, TDP {:.1} W, LPDDR3-1600 dual channel",
        config.tdp.as_watts()
    );

    let workload = spec_workload("gamess").expect("416.gamess is part of the suite");
    let duration = SimTime::from_millis(500.0);
    let mut sim = SocSimulator::new(config)?;

    let baseline = sim.run(&workload, &mut FixedGovernor::baseline(), duration)?;
    let sysscale = sim.run(
        &workload,
        &mut SysScaleGovernor::with_default_thresholds(),
        duration,
    )?;

    println!("\nWorkload: {} ({} simulated)", workload.name, duration);
    println!(
        "  baseline : {:6.3} W average, {:5.2} GHz average CPU clock",
        baseline.average_power().as_watts(),
        baseline.average_cpu_freq_ghz
    );
    println!(
        "  sysscale : {:6.3} W average, {:5.2} GHz average CPU clock",
        sysscale.average_power().as_watts(),
        sysscale.average_cpu_freq_ghz
    );
    println!(
        "  speedup  : {:+.1} %  (low-OP residency {:.0} %, {} DVFS transitions)",
        sysscale.speedup_pct_over(&baseline),
        sysscale.low_op_residency * 100.0,
        sysscale.transitions.count
    );
    for domain in Domain::ALL {
        println!(
            "  {:8}: {:6.3} W -> {:6.3} W",
            domain.name(),
            baseline.average_domain_power(domain).as_watts(),
            sysscale.average_domain_power(domain).as_watts()
        );
    }
    Ok(())
}
