//! Quickstart: describe runs as `Scenario`s, execute them through the
//! deterministic parallel runner (a `SessionPool`), and compare SysScale
//! against the baseline on a SPEC-like workload. Set `SYSSCALE_THREADS` to
//! pin the worker count (`1` reproduces the sequential path bit for bit).
//!
//! ```text
//! cargo run --example quickstart
//! ```

use sysscale::{Scenario, ScenarioSet, SessionPool, SocConfig};
use sysscale_types::{exec, Domain, SimTime};
use sysscale_workloads::spec_workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SocConfig::skylake_default();
    println!(
        "Platform: 2-core Skylake-class SoC, TDP {:.1} W, LPDDR3-1600 dual channel",
        config.tdp.as_watts()
    );

    let workload = spec_workload("gamess").expect("416.gamess is part of the suite");
    let duration = SimTime::from_millis(500.0);

    // One ScenarioSet run covers the whole {baseline, sysscale} column pair
    // and computes the baseline-relative deltas. The matrix is sharded
    // across the pool's workers; the RunSet is identical at any thread
    // count.
    let mut pool = SessionPool::new();
    let threads = exec::default_threads();
    println!("Executor: {threads} worker thread(s) (override with SYSSCALE_THREADS)");
    let runs = ScenarioSet::matrix(
        &config,
        std::slice::from_ref(&workload),
        &["baseline", "sysscale"],
    )?
    .with_baseline("baseline")
    .run_parallel(&mut pool, threads)?;

    let baseline = &runs.baseline_for(&workload.name).expect("ran").report;
    let sysscale = &runs.get(&workload.name, "sysscale").expect("ran").report;
    let cell = runs.cell(&workload.name, "sysscale").expect("ran");

    println!("\nWorkload: {} ({} simulated)", workload.name, duration);
    println!(
        "  baseline : {:6.3} W average, {:5.2} GHz average CPU clock",
        baseline.average_power().as_watts(),
        baseline.average_cpu_freq_ghz
    );
    println!(
        "  sysscale : {:6.3} W average, {:5.2} GHz average CPU clock",
        sysscale.average_power().as_watts(),
        sysscale.average_cpu_freq_ghz
    );
    println!(
        "  speedup  : {:+.1} %  (low-OP residency {:.0} %, {} DVFS transitions)",
        cell.speedup_pct,
        sysscale.low_op_residency * 100.0,
        sysscale.transitions.count
    );
    for domain in Domain::ALL {
        println!(
            "  {:8}: {:6.3} W -> {:6.3} W",
            domain.name(),
            baseline.average_domain_power(domain).as_watts(),
            sysscale.average_domain_power(domain).as_watts()
        );
    }

    // Single custom runs go through the Scenario builder.
    let traced = Scenario::builder(workload)
        .config(config)
        .governor("sysscale")
        .duration(duration)
        .trace(true)
        .build()?;
    let record = pool.session().run(&traced)?;
    let trace = record.trace.expect("trace requested");
    println!(
        "\nTraced re-run: {} slices, first-slice demand {:.2} GiB/s",
        trace.len(),
        trace[0].demanded_gib_s
    );
    Ok(())
}
