//! Reproduces a reduced version of the Fig. 6 predictor-accuracy study:
//! actual-vs-predicted performance impact across three DRAM frequency pairs
//! and three workload classes.
//!
//! ```text
//! cargo run --release --example predictor_study
//! ```

use sysscale::experiments::predictor_study::{fig6, PredictorStudyConfig};
use sysscale::SocConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SocConfig::skylake_default();
    // 40 workloads per panel keeps the example quick; the figures binary and
    // the bench run the paper-scale population (>1600 in total).
    let study = PredictorStudyConfig {
        workloads_per_panel: 40,
        ..PredictorStudyConfig::default()
    };
    let panels = fig6(&config, &study)?;

    println!("Fig. 6 — predictor accuracy across frequency pairs and workload classes");
    println!(
        "{:<10} {:>12} {:>10} {:>12} {:>14} {:>12}",
        "class", "freq pair", "workloads", "correlation", "accuracy", "false pos."
    );
    for p in &panels {
        println!(
            "{:<10} {:>5.2}->{:<5.2} {:>10} {:>12.2} {:>13.1}% {:>11.1}%",
            p.class.name(),
            p.high_ghz,
            p.low_ghz,
            p.workloads,
            p.correlation,
            p.accuracy_pct,
            p.false_positive_pct
        );
    }
    println!(
        "paper reports correlations 0.84-0.96 and accuracies 94.2-98.8% with no false positives"
    );
    Ok(())
}
