//! Integration tests of the governors: SysScale versus the baselines on the
//! full simulator, driven through the Scenario/SimSession API.

use sysscale::{calibrate, CalibrationConfig, ScenarioSet, SimSession, SocConfig};
use sysscale_types::SimTime;
use sysscale_workloads::{
    battery_workload, graphics_workload, spec_cpu2006_suite, spec_workload, Workload,
    WorkloadGenerator,
};

fn matrix(config: &SocConfig, workloads: &[Workload], governors: &[&str]) -> sysscale::RunSet {
    ScenarioSet::matrix(config, workloads, governors)
        .unwrap()
        .with_baseline("baseline")
        .run(&mut SimSession::new())
        .unwrap()
}

#[test]
fn sysscale_speeds_up_compute_bound_and_spares_memory_bound_workloads() {
    let config = SocConfig::skylake_default();
    let names = ["gamess", "namd", "povray", "lbm", "bwaves", "milc"];
    let workloads: Vec<Workload> = names.iter().map(|n| spec_workload(n).unwrap()).collect();
    let runs = matrix(&config, &workloads, &["baseline", "sysscale"]);
    let mut speedups = Vec::new();
    for w in &workloads {
        let record = runs.get(&w.name, "sysscale").unwrap();
        assert_eq!(
            record.report.qos_violations, 0,
            "{} had QoS violations",
            w.name
        );
        let cell = runs.cell(&w.name, "sysscale").unwrap();
        assert!(
            cell.speedup_pct > -3.0,
            "{} regressed by {}%",
            w.name,
            cell.speedup_pct
        );
        speedups.push(cell.speedup_pct);
    }
    let compute_bound_avg = (speedups[0] + speedups[1] + speedups[2]) / 3.0;
    let memory_bound_avg = (speedups[3] + speedups[4] + speedups[5]) / 3.0;
    assert!(
        compute_bound_avg > 4.0,
        "compute-bound average speedup {compute_bound_avg}%"
    );
    assert!(
        compute_bound_avg > memory_bound_avg + 2.0,
        "compute {compute_bound_avg}% vs memory {memory_bound_avg}%"
    );
}

#[test]
fn sysscale_outperforms_memscale_and_coscale_on_the_spec_suite_average() {
    let config = SocConfig::skylake_default();
    // A representative subset keeps the test fast. The restricted MemScale /
    // CoScale platforms are applied automatically by the governor registry.
    let workloads: Vec<Workload> = ["gamess", "namd", "perlbench", "astar", "sphinx3", "lbm"]
        .iter()
        .map(|n| spec_workload(n).unwrap())
        .collect();
    let runs = matrix(
        &config,
        &workloads,
        &["baseline", "sysscale", "memscale-redist", "coscale-redist"],
    );
    let total = |gov: &str| -> f64 {
        workloads
            .iter()
            .map(|w| runs.cell(&w.name, gov).unwrap().speedup_pct)
            .sum()
    };
    let sys_total = total("sysscale");
    let mem_total = total("memscale-redist");
    let co_total = total("coscale-redist");
    assert!(
        sys_total > mem_total && sys_total > co_total,
        "sysscale {sys_total} vs memscale {mem_total} vs coscale {co_total}"
    );
}

#[test]
fn sysscale_reduces_battery_life_power_without_missing_frames() {
    let config = SocConfig::skylake_default();
    let workloads: Vec<Workload> = ["video-playback", "web-browsing"]
        .iter()
        .map(|n| battery_workload(n).unwrap())
        .collect();
    let runs = matrix(&config, &workloads, &["baseline", "sysscale"]);
    for w in &workloads {
        let cell = runs.cell(&w.name, "sysscale").unwrap();
        assert!(
            cell.power_reduction_pct > 2.0,
            "{}: {}%",
            w.name,
            cell.power_reduction_pct
        );
        let report = &runs.get(&w.name, "sysscale").unwrap().report;
        assert_eq!(report.qos_violations, 0);
        let target = w.phases[0].gfx.target_fps.unwrap();
        assert!(
            report.average_fps >= target * 0.9,
            "{}: {} fps",
            w.name,
            report.average_fps
        );
    }
}

#[test]
fn sysscale_boosts_graphics_frame_rate() {
    let config = SocConfig::skylake_default();
    let w = graphics_workload("3DMark06").unwrap();
    let runs = matrix(&config, std::slice::from_ref(&w), &["baseline", "sysscale"]);
    let baseline = &runs.baseline_for(&w.name).unwrap().report;
    let sys = &runs.get(&w.name, "sysscale").unwrap().report;
    assert!(sys.average_gfx_freq_ghz >= baseline.average_gfx_freq_ghz);
    assert!(runs.cell(&w.name, "sysscale").unwrap().speedup_pct > 1.0);
}

#[test]
fn calibrated_predictor_has_no_false_positives_on_the_spec_suite() {
    // Calibrate on a synthetic population, then check the paper's headline
    // property (Sec. 4.2): the predictor never sends a workload to the low
    // point when that would cost more than the bound.
    let config = SocConfig::skylake_default();
    let cal_cfg = CalibrationConfig {
        degradation_bound: 0.02,
        sim_duration: SimTime::from_millis(60.0),
    };
    let population = WorkloadGenerator::with_seed(99).population(30);
    let outcome = calibrate(&config, &population, &cal_cfg).unwrap();
    let predictor = outcome.predictor();
    let peak = sysscale_types::Bandwidth::from_bytes_per_sec(
        config
            .dram()
            .peak_bandwidth(config.uncore_ladder().highest().dram_freq)
            .as_bytes_per_sec(),
    );

    let mut session = SimSession::new();
    let mut false_positives = 0;
    let mut checked = 0;
    for w in spec_cpu2006_suite() {
        let sample = sysscale::measure_sample_in(&mut session, &config, &w, &cal_cfg).unwrap();
        let prediction = predictor.predict(&sample.counters, w.peripherals.static_demand(), peak);
        checked += 1;
        if !prediction.needs_high_performance && sample.actual_degradation > 0.05 {
            false_positives += 1;
        }
    }
    assert!(checked > 20);
    assert_eq!(
        false_positives, 0,
        "{false_positives}/{checked} severe false positives"
    );
}
