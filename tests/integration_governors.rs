//! Integration tests of the governors: SysScale versus the baselines on the
//! full simulator.

use sysscale::{
    calibrate, memscale_config, CalibrationConfig, CoScaleGovernor, FixedGovernor,
    MemScaleGovernor, SocConfig, SocSimulator, SysScaleGovernor,
};
use sysscale_types::SimTime;
use sysscale_workloads::{
    battery_workload, graphics_workload, spec_cpu2006_suite, spec_workload, WorkloadGenerator,
};

fn run(
    config: &SocConfig,
    workload: &sysscale_workloads::Workload,
    governor: &mut dyn sysscale::Governor,
) -> sysscale::SimReport {
    let mut sim = SocSimulator::new(config.clone()).unwrap();
    let duration = workload.iteration_length().max(SimTime::from_millis(300.0));
    sim.run(workload, governor, duration).unwrap()
}

#[test]
fn sysscale_speeds_up_compute_bound_and_spares_memory_bound_workloads() {
    let config = SocConfig::skylake_default();
    let mut results = Vec::new();
    for name in ["gamess", "namd", "povray", "lbm", "bwaves", "milc"] {
        let w = spec_workload(name).unwrap();
        let baseline = run(&config, &w, &mut FixedGovernor::baseline());
        let sys = run(&config, &w, &mut SysScaleGovernor::with_default_thresholds());
        results.push((name, sys.speedup_pct_over(&baseline), sys.qos_violations));
    }
    for (name, speedup, qos) in &results {
        assert_eq!(*qos, 0, "{name} had QoS violations");
        assert!(*speedup > -3.0, "{name} regressed by {speedup}%");
    }
    let compute_bound_avg =
        (results[0].1 + results[1].1 + results[2].1) / 3.0;
    let memory_bound_avg = (results[3].1 + results[4].1 + results[5].1) / 3.0;
    assert!(
        compute_bound_avg > 4.0,
        "compute-bound average speedup {compute_bound_avg}%"
    );
    assert!(
        compute_bound_avg > memory_bound_avg + 2.0,
        "compute {compute_bound_avg}% vs memory {memory_bound_avg}%"
    );
}

#[test]
fn sysscale_outperforms_memscale_and_coscale_on_the_spec_suite_average() {
    let config = SocConfig::skylake_default();
    let restricted = memscale_config(&config);
    let mut sys_total = 0.0;
    let mut mem_total = 0.0;
    let mut co_total = 0.0;
    // A representative subset keeps the test fast.
    for name in ["gamess", "namd", "perlbench", "astar", "sphinx3", "lbm"] {
        let w = spec_workload(name).unwrap();
        let baseline = run(&config, &w, &mut FixedGovernor::baseline());
        sys_total += run(&config, &w, &mut SysScaleGovernor::with_default_thresholds())
            .speedup_pct_over(&baseline);
        mem_total += run(&restricted, &w, &mut MemScaleGovernor::redistributing())
            .speedup_pct_over(&baseline);
        co_total += run(&restricted, &w, &mut CoScaleGovernor::redistributing())
            .speedup_pct_over(&baseline);
    }
    assert!(
        sys_total > mem_total && sys_total > co_total,
        "sysscale {sys_total} vs memscale {mem_total} vs coscale {co_total}"
    );
}

#[test]
fn sysscale_reduces_battery_life_power_without_missing_frames() {
    let config = SocConfig::skylake_default();
    for name in ["video-playback", "web-browsing"] {
        let w = battery_workload(name).unwrap();
        let baseline = run(&config, &w, &mut FixedGovernor::baseline());
        let sys = run(&config, &w, &mut SysScaleGovernor::with_default_thresholds());
        let reduction = sys.power_reduction_pct_vs(&baseline);
        assert!(reduction > 2.0, "{name}: {reduction}%");
        assert_eq!(sys.qos_violations, 0);
        let target = w.phases[0].gfx.target_fps.unwrap();
        assert!(sys.average_fps >= target * 0.9, "{name}: {} fps", sys.average_fps);
    }
}

#[test]
fn sysscale_boosts_graphics_frame_rate() {
    let config = SocConfig::skylake_default();
    let w = graphics_workload("3DMark06").unwrap();
    let baseline = run(&config, &w, &mut FixedGovernor::baseline());
    let sys = run(&config, &w, &mut SysScaleGovernor::with_default_thresholds());
    assert!(sys.average_gfx_freq_ghz >= baseline.average_gfx_freq_ghz);
    assert!(sys.speedup_pct_over(&baseline) > 1.0);
}

#[test]
fn calibrated_predictor_has_no_false_positives_on_the_spec_suite() {
    // Calibrate on a synthetic population, then check the paper's headline
    // property (Sec. 4.2): the predictor never sends a workload to the low
    // point when that would cost more than the bound.
    let config = SocConfig::skylake_default();
    let cal_cfg = CalibrationConfig {
        degradation_bound: 0.02,
        sim_duration: SimTime::from_millis(60.0),
    };
    let population = WorkloadGenerator::with_seed(99).population(30);
    let outcome = calibrate(&config, &population, &cal_cfg).unwrap();
    let predictor = outcome.predictor();
    let peak = sysscale_types::Bandwidth::from_bytes_per_sec(
        config
            .dram
            .peak_bandwidth(config.uncore_ladder.highest().dram_freq)
            .as_bytes_per_sec(),
    );

    let mut false_positives = 0;
    let mut checked = 0;
    for w in spec_cpu2006_suite() {
        let sample = sysscale::measure_sample(&config, &w, &cal_cfg).unwrap();
        let prediction = predictor.predict(
            &sample.counters,
            w.peripherals.static_demand(),
            peak,
        );
        checked += 1;
        if !prediction.needs_high_performance && sample.actual_degradation > 0.05 {
            false_positives += 1;
        }
    }
    assert!(checked > 20);
    assert_eq!(
        false_positives, 0,
        "{false_positives}/{checked} severe false positives"
    );
}
