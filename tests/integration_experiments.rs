//! Smoke tests of the experiment harness: every table/figure generator runs
//! and produces results with the paper's qualitative shape.

use sysscale::experiments::{evaluation, motivation, sensitivity};
use sysscale::{DemandPredictor, SocConfig};

#[test]
fn motivation_experiments_have_the_paper_shape() {
    let config = SocConfig::skylake_default();
    // Table 1.
    let table1 = motivation::table1(&config);
    assert_eq!(table1.len(), 5);
    // Fig. 2(a): power drops for all three; lbm loses performance.
    let fig2a = motivation::fig2a(&config).unwrap();
    assert!(fig2a.iter().all(|r| r.power_reduction_pct > 2.0));
    let lbm = fig2a.iter().find(|r| r.workload.contains("lbm")).unwrap();
    assert!(lbm.perf_change_pct < -5.0);
    // Fig. 2(c)/3(a): lbm demands much more bandwidth than perlbench; astar
    // varies over time.
    let fig3a = motivation::fig3a(&config).unwrap();
    let perl = fig3a.iter().find(|t| t.workload.contains("perl")).unwrap();
    let lbm_trace = fig3a.iter().find(|t| t.workload.contains("lbm")).unwrap();
    let astar = fig3a.iter().find(|t| t.workload.contains("astar")).unwrap();
    // Demand traces include the constant display (isochronous) demand, so
    // compare the workload-driven difference rather than the raw ratio.
    assert!(lbm_trace.average_gib_s > perl.average_gib_s + 1.0);
    assert!(astar.peak_gib_s >= astar.average_gib_s);
    assert!(astar.peak_gib_s > astar.average_gib_s + 0.25);
    // Fig. 3(b): a 4K panel demands ~4x the bandwidth of an HD panel.
    let fig3b = motivation::fig3b();
    let hd = fig3b
        .iter()
        .find(|r| r.configuration == "display: 1x HD")
        .unwrap();
    let uhd = fig3b
        .iter()
        .find(|r| r.configuration == "display: 1x 4K")
        .unwrap();
    assert!(uhd.fraction_of_peak / hd.fraction_of_peak > 3.0);
    // Fig. 4: unoptimized MRC costs both power and performance.
    let fig4 = motivation::fig4(&config).unwrap();
    assert!(fig4.perf_degradation_pct > 3.0);
    assert!(fig4.memory_power_increase_pct > 5.0);
}

#[test]
fn evaluation_figures_reproduce_the_headline_ordering() {
    let config = SocConfig::skylake_default();
    let predictor = DemandPredictor::skylake_default();

    let fig8 = evaluation::fig8(&config, &predictor).unwrap();
    assert_eq!(fig8.rows.len(), 3);
    assert!(fig8.sysscale_avg_pct > fig8.memscale_avg_pct);
    assert!(fig8.sysscale_avg_pct > 3.0, "{}", fig8.sysscale_avg_pct);

    let fig9 = evaluation::fig9(&config, &predictor).unwrap();
    assert_eq!(fig9.rows.len(), 4);
    assert!(fig9.sysscale_avg_pct > 3.0);
    for row in &fig9.rows {
        assert!(row.sysscale_pct >= row.memscale_redist_pct - 0.5, "{row:?}");
    }
}

#[test]
fn overheads_and_transition_budget_hold_on_the_real_flow() {
    let o = sensitivity::overheads();
    assert!(o.transition_stall_us < 10.0);
    assert!(o.mrc_sram_bytes <= 512);
    let measured = sensitivity::measured_transition_stall(&SocConfig::skylake_default()).unwrap();
    assert!(measured.as_micros() < 10.0);
}

#[test]
fn ablations_show_mrc_reload_and_redistribution_matter() {
    let predictor = DemandPredictor::skylake_default();
    let rows = sensitivity::ablations(&predictor).unwrap();
    let by_name = |n: &str| rows.iter().find(|r| r.name == n).unwrap();
    let full = by_name("sysscale");
    let no_redist = by_name("no-redistribution");
    // Without redistribution the performance benefit largely disappears.
    assert!(full.avg_speedup_pct > no_redist.avg_speedup_pct + 1.0);
    // Power savings on video playback remain available without
    // redistribution.
    assert!(no_redist.video_playback_power_reduction_pct > 2.0);
    // A much slower transition flow does not change the picture dramatically
    // (transitions are rare at the 30 ms interval).
    let slow = by_name("slow-transition-100us");
    assert!(slow.avg_speedup_pct > full.avg_speedup_pct - 3.0);
}
