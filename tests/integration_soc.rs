//! Cross-crate integration tests: full-SoC runs across the workload suites
//! under the fixed governors, driven through the Scenario/SimSession API.

use sysscale::{Scenario, SimSession, SocConfig, SocSimulator};
use sysscale_soc::FixedGovernor;
use sysscale_types::{Domain, Power, SimTime};
use sysscale_workloads::{
    battery_life_suite, graphics_suite, idle_display_on, spec_workload, stream_peak_bandwidth,
    Workload,
};

fn run_ms(
    session: &mut SimSession,
    config: &SocConfig,
    workload: &Workload,
    governor: &str,
    ms: f64,
) -> sysscale::SimReport {
    let scenario = Scenario::builder(workload.clone())
        .config(config.clone())
        .governor(governor)
        .duration(SimTime::from_millis(ms))
        .build()
        .unwrap();
    session.run(&scenario).unwrap().report
}

#[test]
fn average_power_never_exceeds_tdp_by_more_than_tolerance() {
    let config = SocConfig::skylake_default();
    let mut session = SimSession::new();
    let mut workloads = vec![
        spec_workload("lbm").unwrap(),
        spec_workload("gamess").unwrap(),
        stream_peak_bandwidth(),
    ];
    workloads.extend(graphics_suite());
    for w in &workloads {
        for gov in ["baseline", "md-dvfs-redist"] {
            let report = run_ms(&mut session, &config, w, gov, 300.0);
            let power = report.average_power().as_watts();
            assert!(
                power <= config.tdp.as_watts() * 1.05,
                "{} under {} drew {power} W",
                w.name,
                report.governor
            );
        }
    }
}

#[test]
fn domain_power_split_is_plausible_for_cpu_workloads() {
    let config = SocConfig::skylake_default();
    let report = run_ms(
        &mut SimSession::new(),
        &config,
        &spec_workload("lbm").unwrap(),
        "baseline",
        300.0,
    );
    let compute = report.average_domain_power(Domain::Compute).as_watts();
    let memory = report.average_domain_power(Domain::Memory).as_watts();
    let io = report.average_domain_power(Domain::Io).as_watts();
    // Compute dominates, memory is substantial for a bandwidth-bound
    // workload, IO is smallest but non-zero.
    assert!(
        compute > memory && memory > io && io > 0.05,
        "{compute}/{memory}/{io}"
    );
    let total = compute + memory + io;
    assert!((total - report.average_power().as_watts()).abs() < 1e-6);
}

#[test]
fn idle_platform_draws_a_small_fraction_of_tdp() {
    let config = SocConfig::skylake_default();
    let report = run_ms(
        &mut SimSession::new(),
        &config,
        &idle_display_on(),
        "baseline",
        300.0,
    );
    assert!(report.average_power() < Power::from_watts(1.0));
}

#[test]
fn battery_life_scenarios_meet_their_frame_rate_at_both_operating_points() {
    let config = SocConfig::skylake_default();
    let mut session = SimSession::new();
    for w in battery_life_suite() {
        let target = w.phases[0].gfx.target_fps.unwrap();
        for gov in ["baseline", "md-dvfs"] {
            let report = run_ms(&mut session, &config, &w, gov, 300.0);
            assert!(
                report.average_fps >= target * 0.9,
                "{} at {}: {} fps vs target {target}",
                w.name,
                report.governor,
                report.average_fps
            );
            assert_eq!(report.qos_violations, 0);
        }
    }
}

#[test]
fn stream_microbenchmark_approaches_peak_bandwidth_at_the_high_point() {
    let config = SocConfig::skylake_default();
    // The low-level simulator API remains available next to the scenario
    // layer for direct experiments.
    let mut sim = SocSimulator::new(config).unwrap();
    let report = sim
        .run(
            &stream_peak_bandwidth(),
            &mut FixedGovernor::baseline(),
            SimTime::from_millis(300.0),
        )
        .unwrap();
    let peak = sim.peak_bandwidth().as_gib_s();
    let achieved = report.average_memory_bandwidth_gib_s();
    assert!(
        achieved > 0.55 * peak,
        "achieved {achieved} GiB/s of {peak} GiB/s peak"
    );
}

#[test]
fn tdp_sweep_scales_compute_throughput() {
    // More TDP means more compute budget and more throughput for a
    // compute-bound workload. One session caches all three platforms.
    let gamess = spec_workload("gamess").unwrap();
    let mut session = SimSession::new();
    let mut last = 0.0;
    for tdp in [3.5, 4.5, 7.0] {
        let config = SocConfig::skylake_m_6y75(Power::from_watts(tdp));
        let report = run_ms(&mut session, &config, &gamess, "baseline", 200.0);
        let throughput = report.metrics.throughput();
        assert!(throughput > last, "tdp {tdp}: {throughput} vs {last}");
        last = throughput;
    }
    assert_eq!(session.cached_platforms(), 3);
}
