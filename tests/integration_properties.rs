//! Randomized integration tests over the full simulator and the SysScale
//! governor, sampled deterministically over a fixed seed set.

use sysscale::{FixedGovernor, SocConfig, SocSimulator, SysScaleGovernor};
use sysscale_types::{Domain, SimTime};
use sysscale_workloads::WorkloadGenerator;

const SEEDS: [u64; 12] = [0, 1, 7, 42, 99, 123, 256, 389, 512, 640, 777, 999];

/// For any synthetic workload: energy accounting is consistent
/// (energy = average power × duration, domains sum to the total), the
/// average power respects the TDP, and SysScale never causes an
/// isochronous QoS violation.
#[test]
fn full_system_invariants() {
    let config = SocConfig::skylake_default();
    let duration = SimTime::from_millis(120.0);
    for seed in SEEDS {
        let workload = WorkloadGenerator::with_seed(seed)
            .population(1)
            .pop()
            .unwrap();
        let mut sim = SocSimulator::new(config.clone()).unwrap();

        for use_sysscale in [false, true] {
            let report = if use_sysscale {
                sim.run(
                    &workload,
                    &mut SysScaleGovernor::with_default_thresholds(),
                    duration,
                )
                .unwrap()
            } else {
                sim.run(&workload, &mut FixedGovernor::baseline(), duration)
                    .unwrap()
            };
            let total = report.metrics.energy.as_joules();
            let by_domain: f64 = Domain::ALL
                .iter()
                .map(|&d| report.energy.domain(d).as_joules())
                .sum();
            assert!((total - by_domain).abs() < 1e-9, "seed {seed}");
            let avg = report.average_power();
            assert!(((avg * report.metrics.duration).as_joules() - total).abs() < 1e-9);
            assert!(
                avg.as_watts() <= config.tdp.as_watts() * 1.05,
                "seed {seed} {}: {} W",
                report.governor,
                avg.as_watts()
            );
            assert_eq!(report.qos_violations, 0, "seed {seed}");
            assert!(report.metrics.work_done >= 0.0);
        }
    }
}

/// SysScale never loses more than a small fraction of performance relative
/// to the baseline (the predictor errs towards the high point), and never
/// consumes more average power than the baseline on the same workload by
/// more than the TDP tolerance.
#[test]
fn sysscale_is_safe_relative_to_baseline() {
    let config = SocConfig::skylake_default();
    let duration = SimTime::from_millis(120.0);
    for seed in SEEDS {
        let workload = WorkloadGenerator::with_seed(seed ^ 0xABCD)
            .population(1)
            .pop()
            .unwrap();
        let mut sim = SocSimulator::new(config.clone()).unwrap();
        let baseline = sim
            .run(&workload, &mut FixedGovernor::baseline(), duration)
            .unwrap();
        let sys = sim
            .run(
                &workload,
                &mut SysScaleGovernor::with_default_thresholds(),
                duration,
            )
            .unwrap();
        let speedup = sys.speedup_pct_over(&baseline);
        assert!(speedup > -8.0, "seed {seed}: speedup {speedup}%");
    }
}
