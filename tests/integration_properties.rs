//! Property-based integration tests over the full simulator and the SysScale
//! governor.

use proptest::prelude::*;

use sysscale::{FixedGovernor, SocConfig, SocSimulator, SysScaleGovernor};
use sysscale_types::{Domain, SimTime};
use sysscale_workloads::WorkloadGenerator;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any synthetic workload: energy accounting is consistent
    /// (energy = average power × duration, domains sum to the total), the
    /// average power respects the TDP, and SysScale never causes an
    /// isochronous QoS violation.
    #[test]
    fn full_system_invariants(seed in 0u64..1_000) {
        let config = SocConfig::skylake_default();
        let workload = WorkloadGenerator::with_seed(seed).population(1).pop().unwrap();
        let mut sim = SocSimulator::new(config.clone()).unwrap();
        let duration = SimTime::from_millis(120.0);

        for use_sysscale in [false, true] {
            let report = if use_sysscale {
                sim.run(&workload, &mut SysScaleGovernor::with_default_thresholds(), duration).unwrap()
            } else {
                sim.run(&workload, &mut FixedGovernor::baseline(), duration).unwrap()
            };
            let total = report.metrics.energy.as_joules();
            let by_domain: f64 = Domain::ALL.iter().map(|&d| report.energy.domain(d).as_joules()).sum();
            prop_assert!((total - by_domain).abs() < 1e-9);
            let avg = report.average_power();
            prop_assert!(((avg * report.metrics.duration).as_joules() - total).abs() < 1e-9);
            prop_assert!(avg.as_watts() <= config.tdp.as_watts() * 1.05,
                "{}: {} W", report.governor, avg.as_watts());
            prop_assert_eq!(report.qos_violations, 0);
            prop_assert!(report.metrics.work_done >= 0.0);
        }
    }

    /// SysScale never loses more than a small fraction of performance
    /// relative to the baseline (the predictor errs towards the high point),
    /// and never consumes more average power than the baseline on the same
    /// workload by more than the TDP tolerance.
    #[test]
    fn sysscale_is_safe_relative_to_baseline(seed in 0u64..1_000) {
        let config = SocConfig::skylake_default();
        let workload = WorkloadGenerator::with_seed(seed ^ 0xABCD).population(1).pop().unwrap();
        let mut sim = SocSimulator::new(config).unwrap();
        let duration = SimTime::from_millis(120.0);
        let baseline = sim.run(&workload, &mut FixedGovernor::baseline(), duration).unwrap();
        let sys = sim.run(&workload, &mut SysScaleGovernor::with_default_thresholds(), duration).unwrap();
        let speedup = sys.speedup_pct_over(&baseline);
        prop_assert!(speedup > -8.0, "speedup {}%", speedup);
    }
}
