//! Differential harness for the sharded sweep executor and the fold-based
//! streaming result pipeline.
//!
//! Pins the PR-level invariants of `SweepSet`, the generator-backed
//! scenario streams, and the `RunConsumer` fold paths:
//!
//! * `fig10` and `dram_sensitivity` produce **byte-identical** output
//!   between the old one-matrix-per-point path and the new single sharded
//!   sweep, at 1, 2, 4, and 8 workers;
//! * every fold-based aggregate — population calibration samples, `fig10`
//!   TDP summaries, the Fig. 6 predictor panels, and the Figs. 7/8/9
//!   evaluation figures — is **bit-identical** to the materialized-`RunSet`
//!   aggregation it replaced, at the same worker counts;
//! * hash-sharding by platform fingerprint strictly reduces simulator
//!   rebuilds versus round-robin on a two-platform sweep, and
//!   `SweepSharding::SplitHotKeys` spreads a dominant platform (>80 % of
//!   cells) over several workers while still beating round-robin's rebuild
//!   count;
//! * the keyed assignment's platform→worker ownership is a pure function
//!   of the fingerprint multiset and the worker count — permuting member
//!   insertion order (or the cells themselves) never changes which workers
//!   own a platform;
//! * a generator-backed `ScenarioSource` yields the same population, in the
//!   same order, as the materialized `Vec` path (10 000 sampled seeds);
//! * streamed calibration samples equal the materialized batch exactly;
//! * the streamed Fig. 3(a) figure equals a collect-the-full-trace
//!   reference.
//!
//! CI runs this file at `SYSSCALE_THREADS ∈ {1, 4}` on top of the explicit
//! worker counts below, so the differential holds under both env-driven and
//! pinned thread counts.

use sysscale::experiments::predictor_study::PredictorStudyConfig;
use sysscale::experiments::{evaluation, motivation, predictor_study, sensitivity};
use sysscale::{
    calibration_source, measure_population, measure_population_from, samples_from_runs,
    CalibrationConfig, DemandPredictor, Scenario, ScenarioSet, ScenarioSource, SessionPool,
    SimSession, SocConfig, SweepSet, SweepSharding,
};
use sysscale_types::exec::Shard;
use sysscale_types::rng::SplitMix64;
use sysscale_types::{Power, SimTime};
use sysscale_workloads::{
    class_buckets, spec_workload, ClassBucketSource, GeneratorConfig, PopulationSource,
    WorkloadGenerator, WorkloadSource,
};

/// The worker counts every differential below is pinned at (the acceptance
/// criterion's 1/4/8 plus the 2-worker partition-boundary case).
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

#[test]
fn fig10_sweep_is_byte_identical_to_the_per_point_path() {
    let predictor = DemandPredictor::skylake_default();
    let tdps = [3.5, 15.0];

    // Reference: the old path, sequentially (1 worker is the sequential
    // path by construction).
    let reference =
        sensitivity::fig10_per_point_in(&mut SessionPool::new(), 1, &predictor, &tdps).unwrap();
    assert_eq!(reference.len(), tdps.len());

    for threads in THREAD_COUNTS {
        let sweep =
            sensitivity::fig10_in(&mut SessionPool::new(), threads, &predictor, &tdps).unwrap();
        assert_eq!(
            sweep, reference,
            "fig10 sweep diverged from per-point at {threads} workers"
        );
        // Byte-identical includes the Debug rendering (downstream snapshots).
        assert_eq!(format!("{sweep:?}"), format!("{reference:?}"));

        let per_point =
            sensitivity::fig10_per_point_in(&mut SessionPool::new(), threads, &predictor, &tdps)
                .unwrap();
        assert_eq!(
            per_point, reference,
            "fig10 per-point path not thread-invariant at {threads} workers"
        );
    }
}

#[test]
fn dram_sensitivity_sweep_is_byte_identical_to_the_per_point_path() {
    let predictor = DemandPredictor::skylake_default();
    let reference =
        sensitivity::dram_sensitivity_per_point_in(&mut SessionPool::new(), 1, &predictor).unwrap();

    for threads in THREAD_COUNTS {
        let sweep =
            sensitivity::dram_sensitivity_in(&mut SessionPool::new(), threads, &predictor).unwrap();
        assert_eq!(
            sweep, reference,
            "dram_sensitivity sweep diverged at {threads} workers"
        );
        assert_eq!(format!("{sweep:?}"), format!("{reference:?}"));
    }

    // The study's headline properties survive the executor change.
    assert!(reference.lpddr3_avg_power_reduction_pct > 0.0);
    assert!(reference.ddr4_shortfall_pct > 0.0);
}

#[test]
fn evaluation_figures_sweep_equals_the_standalone_figures() {
    // Figs. 7/8/9 as one three-suite sweep vs their standalone per-figure
    // matrices: byte-identical.
    let config = SocConfig::skylake_default();
    let predictor = DemandPredictor::skylake_default();
    let (fig7, fig8, fig9) = evaluation::evaluation_figures(&config, &predictor).unwrap();
    assert_eq!(fig7, evaluation::fig7(&config, &predictor).unwrap());
    assert_eq!(fig8, evaluation::fig8(&config, &predictor).unwrap());
    assert_eq!(fig9, evaluation::fig9(&config, &predictor).unwrap());
}

#[test]
fn platform_hash_sharding_strictly_reduces_simulator_rebuilds() {
    // A two-platform sweep laid out contiguously (all of platform A's cells,
    // then all of platform B's): round-robin hands both platforms to both
    // workers; platform sharding gives each platform to exactly one worker.
    let workloads = vec![
        spec_workload("gamess").unwrap(),
        spec_workload("lbm").unwrap(),
        spec_workload("astar").unwrap(),
    ];
    let configs = [
        SocConfig::skylake_default(),
        SocConfig::skylake_m_6y75(Power::from_watts(9.0)),
    ];
    let mut sweep = SweepSet::new();
    for config in &configs {
        sweep.push_set(
            ScenarioSet::matrix(config, &workloads, &["baseline", "sysscale"])
                .unwrap()
                .with_baseline("baseline"),
        );
    }

    let mut round_robin_pool = SessionPool::new();
    let rr = sweep
        .run_parallel_sharded(&mut round_robin_pool, 2, SweepSharding::RoundRobin)
        .unwrap();
    let mut keyed_pool = SessionPool::new();
    let keyed = sweep
        .run_parallel_sharded(&mut keyed_pool, 2, SweepSharding::ByPlatform)
        .unwrap();

    // Identical results, strictly fewer simulator builds.
    assert_eq!(rr, keyed);
    assert!(
        keyed_pool.cached_platforms() < round_robin_pool.cached_platforms(),
        "hash-sharding must reduce rebuilds: {} vs {}",
        keyed_pool.cached_platforms(),
        round_robin_pool.cached_platforms()
    );
    assert_eq!(round_robin_pool.cached_platforms(), 4);
    assert_eq!(keyed_pool.cached_platforms(), 2);
}

#[test]
fn generator_backed_sources_match_the_materialized_path_across_10k_seeds() {
    // Property test over 10 000 sampled seeds: a `PopulationSource` stream
    // equals `WorkloadGenerator::population` — same workloads, same order.
    let mut rng = SplitMix64::new(0x5EED_5EED);
    for round in 0..10_000u32 {
        let seed = rng.next_u64();
        let count = 1 + (rng.next_u64() % 8) as usize;
        let materialized = WorkloadGenerator::with_seed(seed).population(count);
        let source = PopulationSource::with_seed(seed, count);
        assert_eq!(WorkloadSource::len(&source), count);
        let mut streamed = source.stream();
        for (i, expected) in materialized.iter().enumerate() {
            let got = streamed
                .next()
                .unwrap_or_else(|| panic!("round {round}: stream ended at {i}"));
            assert_eq!(got, *expected, "round {round} seed {seed:#x} item {i}");
        }
        assert!(streamed.next().is_none(), "round {round}: stream too long");
    }
}

#[test]
fn class_bucket_sources_match_the_materialized_buckets_across_seeds() {
    // The Fig. 6 population path: each class's streaming bucket equals the
    // materialized reference for the same (seed, quota).
    let mut rng = SplitMix64::new(0xB0CE7);
    for _ in 0..250 {
        let seed = rng.next_u64();
        let quota = 1 + (rng.next_u64() % 6) as usize;
        let config = GeneratorConfig {
            seed,
            ..GeneratorConfig::default()
        };
        let reference = class_buckets(config, quota);
        for (class, bucket) in &reference {
            let source = ClassBucketSource::new(config, quota, *class);
            assert_eq!(source.materialize(), *bucket, "seed {seed:#x} {class:?}");
        }
    }
}

#[test]
fn streamed_calibration_samples_equal_the_materialized_batch() {
    // measure_population_from over a generator recipe vs measure_population
    // over the materialized population: identical samples at every worker
    // count, without ever materializing the streamed population.
    let config = SocConfig::skylake_default();
    let cal = CalibrationConfig {
        degradation_bound: 0.01,
        sim_duration: SimTime::from_millis(40.0),
    };
    let source = PopulationSource::with_seed(0xCA11B, 6);
    let population = source.materialize();

    let reference =
        measure_population(&mut SessionPool::new(), &config, &population, &cal, 1).unwrap();
    assert_eq!(reference.len(), 6);
    for threads in THREAD_COUNTS {
        let streamed =
            measure_population_from(&mut SessionPool::new(), &config, &source, &cal, threads)
                .unwrap();
        assert_eq!(streamed, reference, "threads={threads}");
    }
}

// ---------------------------------------------------------------------------
// Fold-based streaming result pipeline
// ---------------------------------------------------------------------------

#[test]
fn fold_calibration_samples_are_bit_identical_to_materialized_aggregation() {
    // Reference: the materialized pipeline — collect the full RunSet, then
    // aggregate with samples_from_runs. Fold: measure_population_from,
    // which reduces each high/low pair the moment both halves have run and
    // never materializes a record.
    let config = SocConfig::skylake_default();
    let cal = CalibrationConfig {
        degradation_bound: 0.01,
        sim_duration: SimTime::from_millis(40.0),
    };
    let population = PopulationSource::with_seed(0xF01D, 8);

    let source = calibration_source(&config, &population, &cal).unwrap();
    let mut sweep = SweepSet::new();
    sweep.push_source(&source, None);
    let runs = sweep
        .run_parallel(&mut SessionPool::new(), 1)
        .unwrap()
        .pop()
        .unwrap();
    let reference = samples_from_runs(&config, &population, &cal, &runs);
    assert_eq!(reference.len(), 8);

    for threads in THREAD_COUNTS {
        let folded =
            measure_population_from(&mut SessionPool::new(), &config, &population, &cal, threads)
                .unwrap();
        assert_eq!(folded, reference, "threads={threads}");
        // Bit-identical includes the Debug rendering (downstream snapshots).
        assert_eq!(format!("{folded:?}"), format!("{reference:?}"));
    }
}

#[test]
fn fold_fig10_summaries_are_bit_identical_to_the_materialized_path() {
    let predictor = DemandPredictor::skylake_default();
    let tdps = [3.5, 15.0];
    let reference = sensitivity::fig10_in(&mut SessionPool::new(), 1, &predictor, &tdps).unwrap();

    for threads in THREAD_COUNTS {
        let folded =
            sensitivity::fig10_fold_in(&mut SessionPool::new(), threads, &predictor, &tdps)
                .unwrap();
        assert_eq!(
            folded, reference,
            "fig10 fold diverged from the materialized path at {threads} workers"
        );
        assert_eq!(format!("{folded:?}"), format!("{reference:?}"));
    }
}

#[test]
fn fold_fig6_panels_are_bit_identical_to_the_collected_reference() {
    let study = PredictorStudyConfig {
        workloads_per_panel: 8,
        calibration: CalibrationConfig {
            degradation_bound: 0.02,
            sim_duration: SimTime::from_millis(30.0),
        },
        ..PredictorStudyConfig::default()
    };
    let base = SocConfig::skylake_default();
    let reference =
        predictor_study::fig6_collected_in(&mut SessionPool::new(), 1, &base, &study).unwrap();
    assert_eq!(reference.len(), 9);

    for threads in THREAD_COUNTS {
        let folded =
            predictor_study::fig6_in(&mut SessionPool::new(), threads, &base, &study).unwrap();
        assert_eq!(
            folded, reference,
            "fig6 fold panels diverged at {threads} workers"
        );
        assert_eq!(format!("{folded:?}"), format!("{reference:?}"));
    }
}

#[test]
fn fold_evaluation_figures_are_bit_identical_to_the_materialized_figures() {
    let config = SocConfig::skylake_default();
    let predictor = DemandPredictor::skylake_default();
    let reference = evaluation::evaluation_figures(&config, &predictor).unwrap();

    for threads in [1, 8] {
        let folded = evaluation::evaluation_figures_fold_in(
            &mut SessionPool::new(),
            threads,
            &config,
            &predictor,
        )
        .unwrap();
        assert_eq!(
            folded, reference,
            "evaluation fold figures diverged at {threads} workers"
        );
    }
}

// ---------------------------------------------------------------------------
// Sharding: ownership purity and hot-platform splitting
// ---------------------------------------------------------------------------

/// Both keyed strategies over one key slice.
fn keyed_strategies(keys: &[u64]) -> [Shard<'_>; 2] {
    [Shard::ByKey(keys), Shard::SplitHotKeys(keys)]
}

/// The sorted worker set each distinct key's items land on.
fn owners_by_key(keys: &[u64], assignment: &[usize]) -> Vec<(u64, Vec<usize>)> {
    let mut distinct: Vec<u64> = keys.to_vec();
    distinct.sort_unstable();
    distinct.dedup();
    distinct
        .into_iter()
        .map(|key| {
            let mut workers: Vec<usize> = keys
                .iter()
                .zip(assignment)
                .filter(|(k, _)| **k == key)
                .map(|(_, w)| *w)
                .collect();
            workers.sort_unstable();
            workers.dedup();
            (key, workers)
        })
        .collect()
}

#[test]
fn keyed_worker_ownership_is_a_pure_function_of_fingerprints_and_threads() {
    // Property test over random key multisets: permuting the cells (and
    // with them, the order keys first appear in) must not change which
    // workers own a key — dense ranking is by key value, so the assignment
    // is a pure function of (fingerprint multiset, threads). A
    // first-appearance ranking fails this on the first reversed input.
    let mut rng = SplitMix64::new(0x0BDE7_0BDE7);
    for round in 0..500u32 {
        let len = 2 + (rng.next_u64() % 48) as usize;
        let distinct = 1 + rng.next_u64() % 6;
        let keys: Vec<u64> = (0..len)
            .map(|_| (rng.next_u64() % distinct).wrapping_mul(0x9E37_79B9_97F4_A7C1))
            .collect();
        let workers = 1 + (rng.next_u64() % 8) as usize;
        let mut permuted = keys.clone();
        permuted.rotate_left((rng.next_u64() as usize) % len);
        permuted.reverse();

        for (original_shard, permuted_shard) in keyed_strategies(&keys)
            .into_iter()
            .zip(keyed_strategies(&permuted))
        {
            let original = owners_by_key(&keys, &original_shard.assignments(len, workers));
            let shuffled = owners_by_key(&permuted, &permuted_shard.assignments(len, workers));
            assert_eq!(
                original, shuffled,
                "round {round}: {original_shard:?} ownership changed under permutation \
                 (len={len}, workers={workers})"
            );
        }
    }
}

#[test]
fn sweep_member_insertion_order_does_not_change_platform_ownership() {
    // The sweep-level spelling of the purity property: two SweepSets whose
    // members arrive in opposite order must schedule every platform onto
    // the same workers, because dense ranking is by fingerprint value, not
    // first appearance.
    let workloads = vec![
        spec_workload("gamess").unwrap(),
        spec_workload("lbm").unwrap(),
        spec_workload("astar").unwrap(),
    ];
    let config_a = SocConfig::skylake_default();
    let config_b = SocConfig::skylake_m_6y75(Power::from_watts(9.0));
    let make = |config: &SocConfig| {
        ScenarioSet::matrix(config, &workloads, &["baseline", "md-dvfs"]).unwrap()
    };

    let keys_of = |configs: [&SocConfig; 2]| -> Vec<u64> {
        configs
            .iter()
            .flat_map(|config| make(config).shard_keys())
            .collect()
    };
    let forward = keys_of([&config_a, &config_b]);
    let backward = keys_of([&config_b, &config_a]);

    for workers in [2usize, 3, 8] {
        for (forward_shard, backward_shard) in keyed_strategies(&forward)
            .into_iter()
            .zip(keyed_strategies(&backward))
        {
            let fwd = owners_by_key(&forward, &forward_shard.assignments(forward.len(), workers));
            let bwd = owners_by_key(
                &backward,
                &backward_shard.assignments(backward.len(), workers),
            );
            assert_eq!(fwd, bwd, "workers={workers} {forward_shard:?}");
        }
    }
}

#[test]
fn split_hot_keys_spreads_a_dominant_platform_and_still_beats_round_robin() {
    // Platform A owns 20 of 24 cells (>80 %): under ByPlatform its single
    // worker is the sweep's critical path. SplitHotKeys must spread A over
    // both workers (one extra simulator build) while still rebuilding less
    // than round-robin — and all three strategies stay byte-identical.
    let config_a = SocConfig::skylake_default();
    let config_b = SocConfig::skylake_m_6y75(Power::from_watts(9.0));
    let hot_workloads: Vec<_> = ["gamess", "lbm", "astar", "milc", "namd"]
        .iter()
        .map(|n| spec_workload(n).unwrap())
        .collect();
    let cold_workloads = vec![
        spec_workload("gamess").unwrap(),
        spec_workload("lbm").unwrap(),
    ];
    let mut sweep = SweepSet::new();
    // 5 workloads x {baseline, md-dvfs, sysscale, sysscale-no-redist} on A
    // = 20 cells (all four governors share the full platform).
    sweep.push_set(
        ScenarioSet::matrix(
            &config_a,
            &hot_workloads,
            &["baseline", "md-dvfs", "sysscale", "sysscale-no-redist"],
        )
        .unwrap(),
    );
    // 2 workloads x {baseline, md-dvfs} on B = 4 cells.
    sweep.push_set(
        ScenarioSet::matrix(&config_b, &cold_workloads, &["baseline", "md-dvfs"]).unwrap(),
    );
    assert_eq!(sweep.cells(), 24);

    let mut rr_pool = SessionPool::new();
    let rr = sweep
        .run_parallel_sharded(&mut rr_pool, 2, SweepSharding::RoundRobin)
        .unwrap();
    let mut keyed_pool = SessionPool::new();
    let keyed = sweep
        .run_parallel_sharded(&mut keyed_pool, 2, SweepSharding::ByPlatform)
        .unwrap();
    let mut split_pool = SessionPool::new();
    let split = sweep
        .run_parallel_sharded(&mut split_pool, 2, SweepSharding::SplitHotKeys)
        .unwrap();

    assert_eq!(rr, keyed);
    assert_eq!(rr, split);

    // Round-robin: both platforms on both workers (4 builds). ByPlatform:
    // one worker per platform (2 builds). SplitHotKeys: the hot platform on
    // both workers, the cold one on one (3 builds) — the hot platform is
    // demonstrably assigned to >= 2 workers, and the rebuild-reduction
    // assertion versus round-robin still holds.
    assert_eq!(rr_pool.cached_platforms(), 4);
    assert_eq!(keyed_pool.cached_platforms(), 2);
    assert_eq!(split_pool.cached_platforms(), 3);
    assert!(split_pool.cached_platforms() < rr_pool.cached_platforms());
}

// ---------------------------------------------------------------------------
// Cost-model-driven scheduling
// ---------------------------------------------------------------------------

/// A pathologically skewed single-platform set: `short_cells` short-horizon
/// cells plus one long-horizon cell (inserted mid-set) whose estimated cost
/// dwarfs every other cell's.
fn skewed_set(short_cells: usize) -> ScenarioSet {
    let names = ["mcf", "lbm", "gcc"];
    let mut set = ScenarioSet::new();
    for i in 0..short_cells {
        if i == short_cells / 2 {
            set.push(
                Scenario::builder(spec_workload("lbm").unwrap())
                    .duration(SimTime::from_secs(1.0))
                    .build()
                    .unwrap(),
            );
        }
        set.push(
            Scenario::builder(spec_workload(names[i % names.len()]).unwrap())
                .duration(SimTime::from_secs(0.04))
                .build()
                .unwrap(),
        );
    }
    set
}

#[test]
fn cost_sharded_sweeps_are_byte_identical_to_count_sharded_at_every_worker_count() {
    // The tentpole's determinism contract on the pathological-skew shape:
    // weighting the schedule by estimated cost must not change a single
    // byte of the results relative to any count-based strategy, at 1, 2,
    // and 8 workers.
    let set = skewed_set(24);
    let costs = set.cell_costs();
    let (min_cost, max_cost) = (
        costs.iter().copied().min().unwrap(),
        costs.iter().copied().max().unwrap(),
    );
    assert!(
        max_cost >= 20 * min_cost,
        "the skew must be pathological: {max_cost} vs {min_cost}"
    );

    let mut sweep = SweepSet::new();
    sweep.push_set_ref(&set);
    let reference = sweep
        .run_parallel_sharded(&mut SessionPool::new(), 1, SweepSharding::RoundRobin)
        .unwrap();

    for threads in [1, 2, 8] {
        for sharding in [SweepSharding::ByCost, SweepSharding::SplitHotCost] {
            let got = sweep
                .run_parallel_sharded(&mut SessionPool::new(), threads, sharding)
                .unwrap();
            assert_eq!(
                got, reference,
                "{sharding:?} diverged from count-sharded at {threads} workers"
            );
            assert_eq!(format!("{got:?}"), format!("{reference:?}"));
        }
    }
}

#[test]
fn estimated_cell_costs_rank_correlate_with_actual_slice_loop_work() {
    // Cost-model accuracy, in two halves. The estimate only has to *order*
    // cells like the work the simulator actually does
    // (`loop_stats.fixed_point_iters`) — scheduling quality is a function
    // of ranks, not scale.
    //
    // (a) On the Fig. 10 matrix (SPEC suite × {baseline, sysscale}), auto
    // durations make real per-cell work near-constant (every slice runs
    // the full fixed-point budget), so the one strong ordering signal is
    // the long-iteration outlier — the estimate must agree with the
    // measurement on which cell dominates each member.
    let config = SocConfig::skylake_m_6y75(Power::from_watts(4.5));
    let suite = sysscale_workloads::spec_cpu2006_suite();
    let mut sweep = SweepSet::new();
    sweep.push_set(ScenarioSet::matrix(&config, &suite, &["baseline", "sysscale"]).unwrap());

    let estimated = sweep.cell_costs();
    let runs = sweep
        .run_parallel(&mut SessionPool::new(), 4)
        .unwrap()
        .pop()
        .unwrap();
    let actual: Vec<u64> = runs
        .records()
        .iter()
        .map(|r| r.report.loop_stats.fixed_point_iters)
        .collect();
    assert_eq!(estimated.len(), actual.len());
    let argmax = |values: &[u64]| {
        values
            .iter()
            .enumerate()
            .max_by_key(|(_, v)| **v)
            .map(|(i, _)| i)
            .unwrap()
    };
    let half = suite.len();
    for (governor, range) in [("baseline", 0..half), ("sysscale", half..2 * half)] {
        assert_eq!(
            argmax(&estimated[range.clone()]),
            argmax(&actual[range.clone()]),
            "estimate must identify the dominant {governor} cell"
        );
    }

    // (b) On a duration-graded column of the same suite — geometric ×2
    // horizons, the spread a skewed sweep actually schedules over — the
    // full ranking must rank-correlate with the measured work, pinned at
    // Spearman rho ≥ 0.85.
    let mut graded = ScenarioSet::new();
    for (i, workload) in suite.iter().enumerate() {
        let secs = 0.05 * f64::from(1u32 << (i % 6));
        graded.push(
            Scenario::builder(workload.clone())
                .config(config.clone())
                .duration(SimTime::from_secs(secs))
                .build()
                .unwrap(),
        );
    }
    let mut graded_sweep = SweepSet::new();
    graded_sweep.push_set_ref(&graded);
    let estimated: Vec<f64> = graded_sweep
        .cell_costs()
        .iter()
        .map(|&c| c as f64)
        .collect();
    let runs = graded_sweep
        .run_parallel(&mut SessionPool::new(), 4)
        .unwrap()
        .pop()
        .unwrap();
    let actual: Vec<f64> = runs
        .records()
        .iter()
        .map(|r| r.report.loop_stats.fixed_point_iters as f64)
        .collect();
    let rho = spearman_rank_correlation(&estimated, &actual);
    assert!(
        rho >= 0.85,
        "estimated cost must rank-order cells like the real slice-loop work \
         (Spearman rho = {rho:.3})"
    );
}

/// Spearman rank correlation with average ranks for ties.
fn spearman_rank_correlation(a: &[f64], b: &[f64]) -> f64 {
    fn ranks(values: &[f64]) -> Vec<f64> {
        let mut order: Vec<usize> = (0..values.len()).collect();
        order.sort_by(|&i, &j| values[i].total_cmp(&values[j]));
        let mut out = vec![0.0; values.len()];
        let mut i = 0;
        while i < order.len() {
            let mut j = i;
            while j + 1 < order.len() && values[order[j + 1]] == values[order[i]] {
                j += 1;
            }
            let avg = (i + j) as f64 / 2.0;
            for &k in &order[i..=j] {
                out[k] = avg;
            }
            i = j + 1;
        }
        out
    }
    let (ra, rb) = (ranks(a), ranks(b));
    let n = ra.len() as f64;
    let mean = (n - 1.0) / 2.0;
    let mut cov = 0.0;
    let mut var_a = 0.0;
    let mut var_b = 0.0;
    for (x, y) in ra.iter().zip(&rb) {
        cov += (x - mean) * (y - mean);
        var_a += (x - mean) * (x - mean);
        var_b += (y - mean) * (y - mean);
    }
    cov / (var_a.sqrt() * var_b.sqrt())
}

/// The sorted worker set each distinct `(key, cost)` class's items land on.
fn owners_by_cost_class(
    keys: &[u64],
    costs: &[u64],
    assignment: &[usize],
) -> Vec<((u64, u64), Vec<usize>)> {
    let mut classes: Vec<(u64, u64)> = keys.iter().copied().zip(costs.iter().copied()).collect();
    classes.sort_unstable();
    classes.dedup();
    classes
        .into_iter()
        .map(|class| {
            let mut workers: Vec<usize> = keys
                .iter()
                .zip(costs)
                .zip(assignment)
                .filter(|((k, c), _)| (**k, **c) == class)
                .map(|(_, w)| *w)
                .collect();
            workers.sort_unstable();
            workers.dedup();
            (class, workers)
        })
        .collect()
}

#[test]
fn cost_weighted_ownership_is_a_pure_function_of_the_key_cost_multiset() {
    // The cost-weighted mirror of the keyed purity property: permuting the
    // cells must not change which workers own a `(key, cost)` class —
    // ranking is by key value and canonical (cost-descending) order within
    // a key, never by first appearance.
    let mut rng = SplitMix64::new(0x0C05_70BD);
    for round in 0..500u32 {
        let len = 2 + (rng.next_u64() % 48) as usize;
        let distinct = 1 + rng.next_u64() % 6;
        let keys: Vec<u64> = (0..len)
            .map(|_| (rng.next_u64() % distinct).wrapping_mul(0x9E37_79B9_97F4_A7C1))
            .collect();
        // Few distinct cost levels, so equal-cost collisions inside a key
        // are common — the case a naive first-appearance split gets wrong.
        let costs: Vec<u64> = (0..len).map(|_| 1 + rng.next_u64() % 5).collect();
        let workers = 1 + (rng.next_u64() % 8) as usize;

        let mut order: Vec<usize> = (0..len).collect();
        order.rotate_left((rng.next_u64() as usize) % len);
        order.reverse();
        let permuted_keys: Vec<u64> = order.iter().map(|&i| keys[i]).collect();
        let permuted_costs: Vec<u64> = order.iter().map(|&i| costs[i]).collect();

        for split_hot in [false, true] {
            let shard = |k: &[u64], c: &[u64]| {
                if split_hot {
                    Shard::SplitHotCost { keys: k, costs: c }.assignments(len, workers)
                } else {
                    Shard::ByCostKeyed { keys: k, costs: c }.assignments(len, workers)
                }
            };
            let original = owners_by_cost_class(&keys, &costs, &shard(&keys, &costs));
            let shuffled = owners_by_cost_class(
                &permuted_keys,
                &permuted_costs,
                &shard(&permuted_keys, &permuted_costs),
            );
            assert_eq!(
                original, shuffled,
                "round {round}: split_hot={split_hot} ownership changed under \
                 permutation (len={len}, workers={workers})"
            );
        }
    }
}

#[test]
fn fig3a_streaming_reducer_reproduces_the_collected_figure() {
    // Reference: the pre-streaming path — collect every slice, then reduce —
    // reconstructed from the public API with the same scenarios fig3a runs.
    let config = SocConfig::skylake_default();
    let workloads = [
        spec_workload("perlbench").unwrap(),
        spec_workload("lbm").unwrap(),
        spec_workload("astar").unwrap(),
        sysscale_workloads::graphics_workload("3DMark06").unwrap(),
    ];
    let mut session = SimSession::new();
    let mut reference = Vec::new();
    for workload in &workloads {
        let scenario = Scenario::builder(workload.clone())
            .config(config.clone())
            .trace(true)
            .build()
            .unwrap();
        let record = session.run(&scenario).unwrap();
        let trace = record.trace.expect("trace requested");
        let samples: Vec<(f64, f64)> = trace
            .iter()
            .map(|t| (t.at.as_secs(), t.demanded_gib_s))
            .collect();
        let avg = samples.iter().map(|(_, b)| b).sum::<f64>() / samples.len().max(1) as f64;
        let peak = samples.iter().map(|(_, b)| *b).fold(0.0, f64::max);
        reference.push(motivation::BandwidthTrace {
            workload: record.workload.clone(),
            samples,
            average_gib_s: avg,
            peak_gib_s: peak,
        });
    }

    let streamed = motivation::fig3a(&config).unwrap();
    assert_eq!(streamed, reference, "fig3a changed under streaming");
    // The reservoir really held the whole figure (exact mode), and the
    // figure is comfortably inside the O(reservoir) bound.
    for row in &streamed {
        assert!(row.samples.len() <= motivation::TRACE_RESERVOIR_CAPACITY);
    }
}
