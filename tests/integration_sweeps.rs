//! Differential harness for the sharded sweep executor.
//!
//! Pins the PR-level invariants of `SweepSet` and the generator-backed
//! scenario streams:
//!
//! * `fig10` and `dram_sensitivity` produce **byte-identical** output
//!   between the old one-matrix-per-point path and the new single sharded
//!   sweep, at 1, 2, 4, and 8 workers;
//! * hash-sharding by platform fingerprint strictly reduces simulator
//!   rebuilds versus round-robin on a two-platform sweep;
//! * a generator-backed `ScenarioSource` yields the same population, in the
//!   same order, as the materialized `Vec` path (10 000 sampled seeds);
//! * streamed calibration samples equal the materialized batch exactly;
//! * the streamed Fig. 3(a) figure equals a collect-the-full-trace
//!   reference.
//!
//! CI runs this file at `SYSSCALE_THREADS ∈ {1, 4}` on top of the explicit
//! worker counts below, so the differential holds under both env-driven and
//! pinned thread counts.

use sysscale::experiments::{evaluation, motivation, sensitivity};
use sysscale::{
    measure_population, measure_population_from, CalibrationConfig, DemandPredictor, Scenario,
    ScenarioSet, SessionPool, SimSession, SocConfig, SweepSet, SweepSharding,
};
use sysscale_types::rng::SplitMix64;
use sysscale_types::{Power, SimTime};
use sysscale_workloads::{
    class_buckets, spec_workload, ClassBucketSource, GeneratorConfig, PopulationSource,
    WorkloadGenerator, WorkloadSource,
};

/// The worker counts every differential below is pinned at (the acceptance
/// criterion's 1/4/8 plus the 2-worker partition-boundary case).
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

#[test]
fn fig10_sweep_is_byte_identical_to_the_per_point_path() {
    let predictor = DemandPredictor::skylake_default();
    let tdps = [3.5, 15.0];

    // Reference: the old path, sequentially (1 worker is the sequential
    // path by construction).
    let reference =
        sensitivity::fig10_per_point_in(&mut SessionPool::new(), 1, &predictor, &tdps).unwrap();
    assert_eq!(reference.len(), tdps.len());

    for threads in THREAD_COUNTS {
        let sweep =
            sensitivity::fig10_in(&mut SessionPool::new(), threads, &predictor, &tdps).unwrap();
        assert_eq!(
            sweep, reference,
            "fig10 sweep diverged from per-point at {threads} workers"
        );
        // Byte-identical includes the Debug rendering (downstream snapshots).
        assert_eq!(format!("{sweep:?}"), format!("{reference:?}"));

        let per_point =
            sensitivity::fig10_per_point_in(&mut SessionPool::new(), threads, &predictor, &tdps)
                .unwrap();
        assert_eq!(
            per_point, reference,
            "fig10 per-point path not thread-invariant at {threads} workers"
        );
    }
}

#[test]
fn dram_sensitivity_sweep_is_byte_identical_to_the_per_point_path() {
    let predictor = DemandPredictor::skylake_default();
    let reference =
        sensitivity::dram_sensitivity_per_point_in(&mut SessionPool::new(), 1, &predictor).unwrap();

    for threads in THREAD_COUNTS {
        let sweep =
            sensitivity::dram_sensitivity_in(&mut SessionPool::new(), threads, &predictor).unwrap();
        assert_eq!(
            sweep, reference,
            "dram_sensitivity sweep diverged at {threads} workers"
        );
        assert_eq!(format!("{sweep:?}"), format!("{reference:?}"));
    }

    // The study's headline properties survive the executor change.
    assert!(reference.lpddr3_avg_power_reduction_pct > 0.0);
    assert!(reference.ddr4_shortfall_pct > 0.0);
}

#[test]
fn evaluation_figures_sweep_equals_the_standalone_figures() {
    // Figs. 7/8/9 as one three-suite sweep vs their standalone per-figure
    // matrices: byte-identical.
    let config = SocConfig::skylake_default();
    let predictor = DemandPredictor::skylake_default();
    let (fig7, fig8, fig9) = evaluation::evaluation_figures(&config, &predictor).unwrap();
    assert_eq!(fig7, evaluation::fig7(&config, &predictor).unwrap());
    assert_eq!(fig8, evaluation::fig8(&config, &predictor).unwrap());
    assert_eq!(fig9, evaluation::fig9(&config, &predictor).unwrap());
}

#[test]
fn platform_hash_sharding_strictly_reduces_simulator_rebuilds() {
    // A two-platform sweep laid out contiguously (all of platform A's cells,
    // then all of platform B's): round-robin hands both platforms to both
    // workers; platform sharding gives each platform to exactly one worker.
    let workloads = vec![
        spec_workload("gamess").unwrap(),
        spec_workload("lbm").unwrap(),
        spec_workload("astar").unwrap(),
    ];
    let configs = [
        SocConfig::skylake_default(),
        SocConfig::skylake_m_6y75(Power::from_watts(9.0)),
    ];
    let mut sweep = SweepSet::new();
    for config in &configs {
        sweep.push_set(
            ScenarioSet::matrix(config, &workloads, &["baseline", "sysscale"])
                .unwrap()
                .with_baseline("baseline"),
        );
    }

    let mut round_robin_pool = SessionPool::new();
    let rr = sweep
        .run_parallel_sharded(&mut round_robin_pool, 2, SweepSharding::RoundRobin)
        .unwrap();
    let mut keyed_pool = SessionPool::new();
    let keyed = sweep
        .run_parallel_sharded(&mut keyed_pool, 2, SweepSharding::ByPlatform)
        .unwrap();

    // Identical results, strictly fewer simulator builds.
    assert_eq!(rr, keyed);
    assert!(
        keyed_pool.cached_platforms() < round_robin_pool.cached_platforms(),
        "hash-sharding must reduce rebuilds: {} vs {}",
        keyed_pool.cached_platforms(),
        round_robin_pool.cached_platforms()
    );
    assert_eq!(round_robin_pool.cached_platforms(), 4);
    assert_eq!(keyed_pool.cached_platforms(), 2);
}

#[test]
fn generator_backed_sources_match_the_materialized_path_across_10k_seeds() {
    // Property test over 10 000 sampled seeds: a `PopulationSource` stream
    // equals `WorkloadGenerator::population` — same workloads, same order.
    let mut rng = SplitMix64::new(0x5EED_5EED);
    for round in 0..10_000u32 {
        let seed = rng.next_u64();
        let count = 1 + (rng.next_u64() % 8) as usize;
        let materialized = WorkloadGenerator::with_seed(seed).population(count);
        let source = PopulationSource::with_seed(seed, count);
        assert_eq!(WorkloadSource::len(&source), count);
        let mut streamed = source.stream();
        for (i, expected) in materialized.iter().enumerate() {
            let got = streamed
                .next()
                .unwrap_or_else(|| panic!("round {round}: stream ended at {i}"));
            assert_eq!(got, *expected, "round {round} seed {seed:#x} item {i}");
        }
        assert!(streamed.next().is_none(), "round {round}: stream too long");
    }
}

#[test]
fn class_bucket_sources_match_the_materialized_buckets_across_seeds() {
    // The Fig. 6 population path: each class's streaming bucket equals the
    // materialized reference for the same (seed, quota).
    let mut rng = SplitMix64::new(0xB0CE7);
    for _ in 0..250 {
        let seed = rng.next_u64();
        let quota = 1 + (rng.next_u64() % 6) as usize;
        let config = GeneratorConfig {
            seed,
            ..GeneratorConfig::default()
        };
        let reference = class_buckets(config, quota);
        for (class, bucket) in &reference {
            let source = ClassBucketSource::new(config, quota, *class);
            assert_eq!(source.materialize(), *bucket, "seed {seed:#x} {class:?}");
        }
    }
}

#[test]
fn streamed_calibration_samples_equal_the_materialized_batch() {
    // measure_population_from over a generator recipe vs measure_population
    // over the materialized population: identical samples at every worker
    // count, without ever materializing the streamed population.
    let config = SocConfig::skylake_default();
    let cal = CalibrationConfig {
        degradation_bound: 0.01,
        sim_duration: SimTime::from_millis(40.0),
    };
    let source = PopulationSource::with_seed(0xCA11B, 6);
    let population = source.materialize();

    let reference =
        measure_population(&mut SessionPool::new(), &config, &population, &cal, 1).unwrap();
    assert_eq!(reference.len(), 6);
    for threads in THREAD_COUNTS {
        let streamed =
            measure_population_from(&mut SessionPool::new(), &config, &source, &cal, threads)
                .unwrap();
        assert_eq!(streamed, reference, "threads={threads}");
    }
}

#[test]
fn fig3a_streaming_reducer_reproduces_the_collected_figure() {
    // Reference: the pre-streaming path — collect every slice, then reduce —
    // reconstructed from the public API with the same scenarios fig3a runs.
    let config = SocConfig::skylake_default();
    let workloads = [
        spec_workload("perlbench").unwrap(),
        spec_workload("lbm").unwrap(),
        spec_workload("astar").unwrap(),
        sysscale_workloads::graphics_workload("3DMark06").unwrap(),
    ];
    let mut session = SimSession::new();
    let mut reference = Vec::new();
    for workload in &workloads {
        let scenario = Scenario::builder(workload.clone())
            .config(config.clone())
            .trace(true)
            .build()
            .unwrap();
        let record = session.run(&scenario).unwrap();
        let trace = record.trace.expect("trace requested");
        let samples: Vec<(f64, f64)> = trace
            .iter()
            .map(|t| (t.at.as_secs(), t.demanded_gib_s))
            .collect();
        let avg = samples.iter().map(|(_, b)| b).sum::<f64>() / samples.len().max(1) as f64;
        let peak = samples.iter().map(|(_, b)| *b).fold(0.0, f64::max);
        reference.push(motivation::BandwidthTrace {
            workload: record.workload.clone(),
            samples,
            average_gib_s: avg,
            peak_gib_s: peak,
        });
    }

    let streamed = motivation::fig3a(&config).unwrap();
    assert_eq!(streamed, reference, "fig3a changed under streaming");
    // The reservoir really held the whole figure (exact mode), and the
    // figure is comfortably inside the O(reservoir) bound.
    for row in &streamed {
        assert!(row.samples.len() <= motivation::TRACE_RESERVOIR_CAPACITY);
    }
}
