//! Integration tests of the Scenario/SimSession/ScenarioSet API: matrix
//! coverage, determinism across re-runs and across worker counts, session
//! pooling, and baseline-relative deltas.

use sysscale::{
    GovernorRegistry, Scenario, ScenarioSet, SessionPool, SimSession, SocConfig, SocSimulator,
};
use sysscale_soc::FixedGovernor;
use sysscale_types::SimTime;
use sysscale_workloads::{spec_workload, Workload};

fn spec_suite_subset() -> Vec<Workload> {
    ["gamess", "perlbench", "lbm"]
        .iter()
        .map(|n| spec_workload(n).unwrap())
        .collect()
}

#[test]
fn scenario_set_produces_one_metrics_record_per_cell() {
    // (a) A workloads x governors matrix yields exactly one RunMetrics per
    // (workload, governor) cell.
    let workloads = spec_suite_subset();
    let governors = ["baseline", "sysscale"];
    let runs = ScenarioSet::matrix(&SocConfig::skylake_default(), &workloads, &governors)
        .unwrap()
        .with_baseline("baseline")
        .run(&mut SimSession::new())
        .unwrap();

    assert_eq!(runs.len(), workloads.len() * governors.len());
    for w in &workloads {
        for gov in governors {
            let record = runs
                .get(&w.name, gov)
                .unwrap_or_else(|| panic!("missing cell ({}, {gov})", w.name));
            assert_eq!(record.workload, w.name);
            assert_eq!(record.governor, gov);
            assert!(record.report.metrics.work_done > 0.0);
            assert!(record.report.metrics.energy.as_joules() > 0.0);
            assert!(record.report.metrics.duration > SimTime::ZERO);
        }
    }
    // Exactly one record per key: no duplicates hiding behind get().
    let mut keys: Vec<(String, String)> = runs
        .records()
        .iter()
        .map(|r| (r.workload.clone(), r.governor.clone()))
        .collect();
    keys.sort();
    keys.dedup();
    assert_eq!(keys.len(), runs.len());
}

#[test]
fn rerunning_a_scenario_on_one_simulator_is_deterministic() {
    // (b) No state leaks between runs: the same scenario executed twice on
    // the same session (and the same underlying SocSimulator) produces
    // identical metrics, counters, and transition statistics.
    let scenario = Scenario::builder(spec_workload("astar").unwrap())
        .governor("sysscale")
        .duration(SimTime::from_millis(250.0))
        .build()
        .unwrap();
    let mut session = SimSession::new();
    let first = session.run(&scenario).unwrap();
    let second = session.run(&scenario).unwrap();
    assert_eq!(
        session.cached_platforms(),
        1,
        "same platform, same simulator"
    );
    assert_eq!(first.report, second.report);

    // The same holds on a bare simulator driven directly.
    let mut sim = SocSimulator::new(SocConfig::skylake_default()).unwrap();
    let w = spec_workload("lbm").unwrap();
    let a = sim
        .run(
            &w,
            &mut FixedGovernor::md_dvfs(true),
            SimTime::from_millis(150.0),
        )
        .unwrap();
    let b = sim
        .run(
            &w,
            &mut FixedGovernor::md_dvfs(true),
            SimTime::from_millis(150.0),
        )
        .unwrap();
    assert_eq!(a, b);
}

#[test]
fn runset_speedup_matches_hand_computed_value() {
    // (c) The RunSet's baseline-relative speedup equals speedup_pct_over
    // computed by hand from the underlying reports.
    let workloads = spec_suite_subset();
    let runs = ScenarioSet::matrix(
        &SocConfig::skylake_default(),
        &workloads,
        &["baseline", "md-dvfs-redist"],
    )
    .unwrap()
    .with_baseline("baseline")
    .run(&mut SimSession::new())
    .unwrap();

    for w in &workloads {
        let baseline = runs.baseline_for(&w.name).unwrap();
        let run = runs.get(&w.name, "md-dvfs-redist").unwrap();
        let cell = runs.cell(&w.name, "md-dvfs-redist").unwrap();
        let by_hand = run.report.speedup_pct_over(&baseline.report);
        assert!(
            (cell.speedup_pct - by_hand).abs() < 1e-12,
            "{}: {} vs {}",
            w.name,
            cell.speedup_pct,
            by_hand
        );
        let power_by_hand = run.report.power_reduction_pct_vs(&baseline.report);
        assert!((cell.power_reduction_pct - power_by_hand).abs() < 1e-12);
    }
}

#[test]
fn governor_restrictions_flow_through_the_matrix() {
    // The MemScale column runs on the restricted platform; the session keeps
    // one simulator per distinct platform.
    let workloads = spec_suite_subset();
    let mut session = SimSession::new();
    let runs = ScenarioSet::matrix(
        &SocConfig::skylake_default(),
        &workloads,
        &["baseline", "memscale"],
    )
    .unwrap()
    .with_baseline("baseline")
    .run(&mut session)
    .unwrap();
    assert_eq!(session.cached_platforms(), 2);
    assert_eq!(runs.len(), 6);
}

#[test]
fn run_parallel_is_bit_identical_to_sequential_at_every_thread_count() {
    // The acceptance property of the parallel executor: the RunSet from
    // run_parallel(n) equals the sequential run() byte for byte, for a
    // matrix that spans both platforms (memscale restricts the platform) and
    // a stateful adaptive governor (sysscale transitions at runtime).
    let workloads = spec_suite_subset();
    let set = ScenarioSet::matrix(
        &SocConfig::skylake_default(),
        &workloads,
        &["baseline", "sysscale", "memscale", "md-dvfs-redist"],
    )
    .unwrap()
    .with_baseline("baseline");

    let sequential = set.run(&mut SimSession::new()).unwrap();
    for threads in [1, 2, 8] {
        let mut pool = SessionPool::new();
        let parallel = set.run_parallel(&mut pool, threads).unwrap();
        assert_eq!(
            sequential, parallel,
            "run_parallel({threads}) diverged from the sequential path"
        );
        // Stable scenario order, not completion order.
        let keys: Vec<(&str, &str)> = parallel
            .records()
            .iter()
            .map(|r| (r.workload.as_str(), r.governor.as_str()))
            .collect();
        let expected: Vec<(&str, &str)> = sequential
            .records()
            .iter()
            .map(|r| (r.workload.as_str(), r.governor.as_str()))
            .collect();
        assert_eq!(keys, expected);
        // Debug formatting is part of "bit-identical" for downstream
        // snapshotting.
        assert_eq!(format!("{sequential:?}"), format!("{parallel:?}"));
    }
}

#[test]
fn session_pool_caches_simulators_across_matrices() {
    // Re-running matrices on the same pool must not rebuild simulators: the
    // cached (worker, platform) count stays flat after the first batch.
    let workloads = spec_suite_subset();
    let set = ScenarioSet::matrix(
        &SocConfig::skylake_default(),
        &workloads,
        &["baseline", "memscale"],
    )
    .unwrap()
    .with_baseline("baseline");

    let mut pool = SessionPool::new();
    let first = set.run_parallel(&mut pool, 2).unwrap();
    assert_eq!(pool.workers(), 2);
    let after_first = pool.cached_platforms();
    // Two platforms (full + memscale-restricted), at most one simulator per
    // (worker, platform).
    assert!((2..=4).contains(&after_first), "{after_first}");

    // Same matrix again: everything is served from the cached simulators.
    let second = set.run_parallel(&mut pool, 2).unwrap();
    assert_eq!(pool.cached_platforms(), after_first);
    assert_eq!(first, second);

    // A different matrix on the same platforms also reuses the cache.
    let other = ScenarioSet::matrix(
        &SocConfig::skylake_default(),
        &workloads[..1],
        &["md-dvfs", "memscale"],
    )
    .unwrap()
    .run_parallel(&mut pool, 2)
    .unwrap();
    assert_eq!(pool.cached_platforms(), after_first);
    assert_eq!(other.len(), 2);

    // Requesting more workers later grows the pool without disturbing the
    // existing sessions.
    let wide = set.run_parallel(&mut pool, 4).unwrap();
    assert_eq!(pool.workers(), 4);
    assert_eq!(wide, first);
}

#[test]
fn unknown_governor_names_error_cleanly() {
    let workloads = spec_suite_subset();
    let err = ScenarioSet::matrix(
        &SocConfig::skylake_default(),
        &workloads,
        &["baseline", "turbo-mode"],
    )
    .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("turbo-mode"), "{msg}");
    // The registry advertises what IS available.
    assert!(GovernorRegistry::builtin()
        .names()
        .contains(&"sysscale".to_string()));
}
