//! Performance contracts pinned by a counting global allocator: the
//! untraced slice loop performs no per-slice heap allocation, and streaming
//! a generator-backed workload population holds live workload memory
//! independent of the population size.
//!
//! The allocator counters are process-global, so this file's tests serialize
//! on one mutex instead of relying on `--test-threads=1`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use sysscale::{FixedGovernor, SocConfig, SocSimulator};
use sysscale_types::SimTime;
use sysscale_workloads::{spec_workload, PopulationSource, WorkloadSource};

/// System allocator wrapper that counts allocation calls and tracks
/// live/peak heap bytes (the default `realloc`/`alloc_zeroed` route through
/// `alloc`, so growth is counted too).
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        let live =
            LIVE_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed) + layout.size() as u64;
        PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Serializes the allocator-observing tests (the counters are global).
static COUNTER_LOCK: Mutex<()> = Mutex::new(());

fn allocations_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let result = f();
    (ALLOCATIONS.load(Ordering::Relaxed) - before, result)
}

/// Peak heap growth (bytes above the level at entry) while `f` runs.
fn peak_growth_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let baseline = LIVE_BYTES.load(Ordering::Relaxed);
    PEAK_BYTES.store(baseline, Ordering::Relaxed);
    let result = f();
    let peak = PEAK_BYTES.load(Ordering::Relaxed);
    (peak.saturating_sub(baseline), result)
}

#[test]
fn untraced_run_allocations_are_independent_of_slice_count() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    let mut sim = SocSimulator::new(SocConfig::skylake_default()).unwrap();
    let lbm = spec_workload("lbm").unwrap();

    // Warm-up: first run pays one-time lazy initialisation.
    sim.run(
        &lbm,
        &mut FixedGovernor::baseline(),
        SimTime::from_millis(300.0),
    )
    .unwrap();

    let (short_allocs, short_report) = allocations_during(|| {
        sim.run(
            &lbm,
            &mut FixedGovernor::baseline(),
            SimTime::from_millis(300.0),
        )
        .unwrap()
    });
    let (long_allocs, long_report) = allocations_during(|| {
        sim.run(
            &lbm,
            &mut FixedGovernor::baseline(),
            SimTime::from_millis(6_000.0),
        )
        .unwrap()
    });
    assert_eq!(short_report.loop_stats.slices, 300);
    assert_eq!(long_report.loop_stats.slices, 6_000);

    // Sanity: the counter is live (a run allocates its per-run state — the
    // compiled phase schedule, the counter window, the report strings) and
    // that state is small.
    assert!(short_allocs > 0, "allocation counter must be hooked");
    assert!(
        short_allocs < 64,
        "per-run setup should allocate O(1) times, got {short_allocs}"
    );

    // 20x the slices must not buy additional allocations: everything the
    // slice loop touches (counter sets, power breakdowns, the phase
    // schedule, the counter window) is fixed-size or preallocated per run.
    // A small slack absorbs allocator-internal bookkeeping.
    assert!(
        long_allocs <= short_allocs + 4,
        "allocations grew with slice count: {short_allocs} for 300 slices, \
         {long_allocs} for 6000 slices"
    );
}

#[test]
fn streaming_a_population_holds_workload_memory_independent_of_size() {
    let _guard = COUNTER_LOCK.lock().unwrap();

    // Drain a generator-backed stream, keeping only a scalar digest: live
    // workload memory must stay flat because each workload is dropped before
    // the next is generated.
    let drain = |count: usize| -> u64 {
        let source = PopulationSource::with_seed(0x0A110C, count);
        let (peak, digest) = peak_growth_during(|| {
            source
                .stream()
                .map(|w| w.name.len() as u64 + w.phases.len() as u64)
                .sum::<u64>()
        });
        assert!(digest > 0, "stream was consumed");
        peak
    };

    // Warm-up pass absorbs one-time lazy state.
    let _ = drain(1_000);
    let small_peak = drain(10_000);
    let large_peak = drain(100_000);

    // Reference scale: materializing the large population holds every
    // workload at once.
    let source = PopulationSource::with_seed(0x0A110C, 100_000);
    let (materialized_peak, population) = peak_growth_during(|| source.materialize());
    assert_eq!(population.len(), 100_000);
    drop(population);

    // 10x the population must not grow the streaming peak: a generous
    // absolute slack (64 KiB) absorbs allocator bookkeeping noise, while
    // the materialized path is megabytes.
    assert!(
        large_peak <= small_peak + 64 * 1024,
        "streaming peak grew with population size: {small_peak} B for 10k, \
         {large_peak} B for 100k"
    );
    assert!(
        materialized_peak > 20 * large_peak.max(1),
        "materializing should dwarf streaming: {materialized_peak} B vs {large_peak} B"
    );
}
