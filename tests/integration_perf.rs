//! Slice-loop performance contracts: the untraced hot path performs no
//! per-slice heap allocation, and the memory fixed point's iteration count
//! stays within its contract.
//!
//! This file holds a single test so the process-global allocation counter is
//! not polluted by concurrently running tests in the same binary.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use sysscale::{FixedGovernor, SocConfig, SocSimulator};
use sysscale_types::SimTime;
use sysscale_workloads::spec_workload;

/// System allocator wrapper that counts allocation calls (the default
/// `realloc`/`alloc_zeroed` route through `alloc`, so growth is counted
/// too).
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let result = f();
    (ALLOCATIONS.load(Ordering::Relaxed) - before, result)
}

#[test]
fn untraced_run_allocations_are_independent_of_slice_count() {
    let mut sim = SocSimulator::new(SocConfig::skylake_default()).unwrap();
    let lbm = spec_workload("lbm").unwrap();

    // Warm-up: first run pays one-time lazy initialisation.
    sim.run(
        &lbm,
        &mut FixedGovernor::baseline(),
        SimTime::from_millis(300.0),
    )
    .unwrap();

    let (short_allocs, short_report) = allocations_during(|| {
        sim.run(
            &lbm,
            &mut FixedGovernor::baseline(),
            SimTime::from_millis(300.0),
        )
        .unwrap()
    });
    let (long_allocs, long_report) = allocations_during(|| {
        sim.run(
            &lbm,
            &mut FixedGovernor::baseline(),
            SimTime::from_millis(6_000.0),
        )
        .unwrap()
    });
    assert_eq!(short_report.loop_stats.slices, 300);
    assert_eq!(long_report.loop_stats.slices, 6_000);

    // Sanity: the counter is live (a run allocates its per-run state — the
    // compiled phase schedule, the counter window, the report strings) and
    // that state is small.
    assert!(short_allocs > 0, "allocation counter must be hooked");
    assert!(
        short_allocs < 64,
        "per-run setup should allocate O(1) times, got {short_allocs}"
    );

    // 20x the slices must not buy additional allocations: everything the
    // slice loop touches (counter sets, power breakdowns, the phase
    // schedule, the counter window) is fixed-size or preallocated per run.
    // A small slack absorbs allocator-internal bookkeeping.
    assert!(
        long_allocs <= short_allocs + 4,
        "allocations grew with slice count: {short_allocs} for 300 slices, \
         {long_allocs} for 6000 slices"
    );
}
