//! Performance contracts pinned by a counting global allocator: the
//! untraced slice loop performs no per-slice heap allocation, every
//! registry governor's `decide` is allocation-free per evaluation interval
//! across a full run, streaming a generator-backed workload population
//! holds live workload memory independent of the population size, and the
//! fold-based result pipeline holds peak result memory O(workers) — flat in
//! the cell count — where the materializing path grows O(cells).
//!
//! The allocator counters are process-global, so this file's tests serialize
//! on one mutex instead of relying on `--test-threads=1`.

use std::sync::Mutex;

use sysscale::{
    calibration_source, measure_population_from, CalibrationConfig, FixedGovernor,
    GovernorRegistry, SessionPool, SocConfig, SocSimulator, SweepSet,
};
use sysscale_alloctrack::{allocations_during, peak_growth_during, TrackingAllocator};
use sysscale_types::{exec, SimTime};
use sysscale_workloads::{spec_workload, PopulationSource, WorkloadSource};

#[global_allocator]
static ALLOCATOR: TrackingAllocator = TrackingAllocator;

/// Serializes the allocator-observing tests (the counters are global).
static COUNTER_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn untraced_run_allocations_are_independent_of_slice_count() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    let mut sim = SocSimulator::new(SocConfig::skylake_default()).unwrap();
    let lbm = spec_workload("lbm").unwrap();

    // Warm-up: first run pays one-time lazy initialisation.
    sim.run(
        &lbm,
        &mut FixedGovernor::baseline(),
        SimTime::from_millis(300.0),
    )
    .unwrap();

    let (short_allocs, short_report) = allocations_during(|| {
        sim.run(
            &lbm,
            &mut FixedGovernor::baseline(),
            SimTime::from_millis(300.0),
        )
        .unwrap()
    });
    let (long_allocs, long_report) = allocations_during(|| {
        sim.run(
            &lbm,
            &mut FixedGovernor::baseline(),
            SimTime::from_millis(6_000.0),
        )
        .unwrap()
    });
    assert_eq!(short_report.loop_stats.slices, 300);
    assert_eq!(long_report.loop_stats.slices, 6_000);

    // Sanity: the counter is live (a run allocates its per-run state — the
    // compiled phase schedule, the counter window, the report strings) and
    // that state is small.
    assert!(short_allocs > 0, "allocation counter must be hooked");
    assert!(
        short_allocs < 64,
        "per-run setup should allocate O(1) times, got {short_allocs}"
    );

    // 20x the slices must not buy additional allocations: everything the
    // slice loop touches (counter sets, power breakdowns, the phase
    // schedule, the counter window) is fixed-size or preallocated per run.
    // A small slack absorbs allocator-internal bookkeeping.
    assert!(
        long_allocs <= short_allocs + 4,
        "allocations grew with slice count: {short_allocs} for 300 slices, \
         {long_allocs} for 6000 slices"
    );
}

#[test]
fn registry_governors_are_allocation_free_per_evaluation_interval() {
    let _guard = COUNTER_LOCK.lock().unwrap();

    // Every policy of the built-in registry — including the stateful
    // SysScale/MemScale/CoScale governors whose `decide` runs once per
    // evaluation interval — must not allocate per interval: a 20x longer
    // run (20x the intervals, and with it 20x the decisions and DVFS
    // transitions) must not buy additional allocations beyond the fixed
    // per-run setup. This is the ROADMAP's governor-interval audit.
    let registry = GovernorRegistry::builtin();
    let lbm = spec_workload("lbm").unwrap();
    for name in registry.names() {
        let factory = registry.resolve(&name).unwrap();
        let config = factory.platform(&SocConfig::skylake_default());
        let mut sim = SocSimulator::new(config).unwrap();

        // Warm-up: the first run pays one-time lazy initialisation.
        let mut governor = factory.build();
        sim.run(&lbm, governor.as_mut(), SimTime::from_millis(300.0))
            .unwrap();

        let (short_allocs, short_report) = allocations_during(|| {
            let mut governor = factory.build();
            sim.run(&lbm, governor.as_mut(), SimTime::from_millis(300.0))
                .unwrap()
        });
        let (long_allocs, long_report) = allocations_during(|| {
            let mut governor = factory.build();
            sim.run(&lbm, governor.as_mut(), SimTime::from_millis(6_000.0))
                .unwrap()
        });
        assert_eq!(short_report.loop_stats.slices, 300, "{name}");
        assert_eq!(long_report.loop_stats.slices, 6_000, "{name}");
        assert!(
            short_allocs > 0,
            "{name}: allocation counter must be hooked"
        );
        assert!(
            long_allocs <= short_allocs + 4,
            "{name}: allocations grew with interval count: {short_allocs} for 300 slices, \
             {long_allocs} for 6000 slices"
        );
    }
}

#[test]
fn streaming_a_population_holds_workload_memory_independent_of_size() {
    let _guard = COUNTER_LOCK.lock().unwrap();

    // Drain a generator-backed stream, keeping only a scalar digest: live
    // workload memory must stay flat because each workload is dropped before
    // the next is generated.
    let drain = |count: usize| -> u64 {
        let source = PopulationSource::with_seed(0x0A110C, count);
        let (peak, digest) = peak_growth_during(|| {
            source
                .stream()
                .map(|w| w.name.len() as u64 + w.phases.len() as u64)
                .sum::<u64>()
        });
        assert!(digest > 0, "stream was consumed");
        peak
    };

    // Warm-up pass absorbs one-time lazy state.
    let _ = drain(1_000);
    let small_peak = drain(10_000);
    let large_peak = drain(100_000);

    // Reference scale: materializing the large population holds every
    // workload at once.
    let source = PopulationSource::with_seed(0x0A110C, 100_000);
    let (materialized_peak, population) = peak_growth_during(|| source.materialize());
    assert_eq!(population.len(), 100_000);
    drop(population);

    // 10x the population must not grow the streaming peak: a generous
    // absolute slack (64 KiB) absorbs allocator bookkeeping noise, while
    // the materialized path is megabytes.
    assert!(
        large_peak <= small_peak + 64 * 1024,
        "streaming peak grew with population size: {small_peak} B for 10k, \
         {large_peak} B for 100k"
    );
    assert!(
        materialized_peak > 20 * large_peak.max(1),
        "materializing should dwarf streaming: {materialized_peak} B vs {large_peak} B"
    );
}

#[test]
fn folding_a_100k_cell_batch_holds_result_memory_independent_of_cell_count() {
    let _guard = COUNTER_LOCK.lock().unwrap();

    // The exec-level contract of the fold core: every cell produces a
    // heap-allocated "record" (a 256 B payload standing in for a
    // RunRecord); the fold digests and drops it, so peak result memory is
    // the per-worker accumulators — independent of how many cells stream
    // through — while the mapping path materializes every record.
    let workers = 8usize;
    let fold_peak = |cells: usize| -> u64 {
        let mut ctxs = vec![(); workers];
        let (peak, (count, digest)) = peak_growth_during(|| {
            exec::fold_indices_with_workers(
                &mut ctxs,
                cells,
                exec::Shard::RoundRobin,
                || (0u64, 0u64),
                |(), acc: &mut (u64, u64), i| {
                    let record = vec![(i % 251) as u8; 256];
                    acc.0 += 1;
                    acc.1 = acc
                        .1
                        .wrapping_add(record.iter().map(|&b| u64::from(b)).sum::<u64>());
                },
                |into, from| {
                    into.0 += from.0;
                    into.1 = into.1.wrapping_add(from.1);
                },
            )
        });
        assert_eq!(count, cells as u64);
        assert!(digest > 0);
        peak
    };

    // Warm-up pass absorbs one-time lazy state.
    let _ = fold_peak(1_000);
    let small_peak = fold_peak(10_000);
    let large_peak = fold_peak(100_000);

    // 10x the cells must not grow the fold's peak: a generous absolute
    // slack (64 KiB) absorbs allocator bookkeeping noise.
    assert!(
        large_peak <= small_peak + 64 * 1024,
        "fold peak grew with cell count: {small_peak} B for 10k cells, \
         {large_peak} B for 100k"
    );

    // Reference scale: materializing the same 100k records holds them all.
    let mut ctxs = vec![(); workers];
    let (materialized_peak, records) = peak_growth_during(|| {
        exec::map_indices_with_workers(&mut ctxs, 100_000, exec::Shard::RoundRobin, |(), i| {
            vec![(i % 251) as u8; 256]
        })
    });
    assert_eq!(records.len(), 100_000);
    drop(records);
    assert!(
        materialized_peak > 20 * large_peak.max(1),
        "materializing should dwarf the fold: {materialized_peak} B vs {large_peak} B"
    );
}

#[test]
fn fold_calibration_uses_less_result_memory_than_the_materialized_runset() {
    let _guard = COUNTER_LOCK.lock().unwrap();

    // The scenario-level spelling: a real calibration sweep (300 cells)
    // aggregated by the fold pipeline versus collected into a RunSet and
    // aggregated afterwards. Both produce bit-identical samples; the fold
    // path's peak heap growth must stay below the materializing path's,
    // which holds every record until the sweep drains. Warm pools keep the
    // one-time simulator construction out of both measurements.
    let config = SocConfig::skylake_default();
    let cal = CalibrationConfig {
        degradation_bound: 0.01,
        sim_duration: SimTime::from_millis(4.0),
    };
    let population = PopulationSource::with_seed(0x0F01D, 150);
    let threads = 4usize;

    let mut fold_pool = SessionPool::new();
    let _ = measure_population_from(&mut fold_pool, &config, &population, &cal, threads).unwrap();
    let (fold_peak, folded) = peak_growth_during(|| {
        measure_population_from(&mut fold_pool, &config, &population, &cal, threads).unwrap()
    });

    let mut collect_pool = SessionPool::new();
    let collect = |pool: &mut SessionPool| {
        let source = calibration_source(&config, &population, &cal).unwrap();
        let mut sweep = SweepSet::new();
        sweep.push_source(&source, None);
        sweep.run_parallel(pool, threads).unwrap().pop().unwrap()
    };
    let _ = collect(&mut collect_pool);
    let (materialized_peak, runs) = peak_growth_during(|| collect(&mut collect_pool));

    let reference = sysscale::samples_from_runs(&config, &population, &cal, &runs);
    assert_eq!(folded, reference, "fold and collected samples diverged");
    assert!(
        materialized_peak > fold_peak,
        "materializing a 300-cell RunSet should out-allocate the fold: \
         {materialized_peak} B vs {fold_peak} B"
    );
}
